//! Regression pins for the two real bugs the schedule-exploration
//! harness found, replayed under perturbation sweeps.
//!
//! 1. **Cross-collective Done-skip** (deterministic seeds 0x8c/0xfc): a
//!    gather follows another contribution-channel collective; a relay
//!    master could consume contribution slots out of order across the
//!    call boundary and overwrite a slot whose previous payload was not
//!    yet drained. Fixed by the "contrib consumed in order" guards; the
//!    `gather → reduce_scatter` program here is the minimal reproducer.
//!
//! 2. **Pair writer-handoff race** (perturbed seed 0x65): landing-pair
//!    publish was one costed flag-set per reader, so under compute
//!    stalls a *new* writer could pass `wait_free` (all flags zero is
//!    ambiguous between "released" and "not yet published") while the
//!    previous writer was stalled mid-publish, overwrite the side, and
//!    feed readers the wrong cell. Fixed by the monotone use-counter
//!    protocol in `shmem::BufPair` (`ready`/`released` counter banks);
//!    the alltoallv stall+straggler sweep here replays the trigger.
//!
//! Both bugs depended on `SpinFlag::raise` monotonicity for their fix,
//! so these sweeps (run with the monotone default ON — see
//! `tests/fault_injection.rs` for the reverted variant) pin exactly the
//! behaviour the fault-injection detector checks from the other side.

use simnet::{Perturb, SimTime};
use srm_cluster::{explore_one, run_scenario, AliasMode, ExploreOpts, Op, ProgStep, Scenario};

fn step(op: Op, seg: usize, root: usize, nonblocking: bool) -> ProgStep {
    ProgStep {
        op,
        comm: 0,
        seg,
        root,
        nonblocking,
        alias: AliasMode::None,
    }
}

/// Run a hand-built world-only program on `nodes`x`tpn` under `perturb`
/// and panic with the harness's reproducer on any failure.
fn run_pinned(nodes: usize, tpn: usize, steps: Vec<ProgStep>, perturb: Perturb) {
    let scenario = Scenario {
        nodes,
        tpn,
        perturb,
        groups: Vec::new(),
        splits: Vec::new(),
        steps,
    };
    let opts = ExploreOpts {
        nodes: Some(nodes),
        tpn: Some(tpn),
        ..ExploreOpts::default()
    };
    if let Err(f) = run_scenario(perturb.seed, scenario, &opts) {
        panic!("pinned scenario failed:\n{f}");
    }
}

/// The catch-up shape from the original report: gather → scatter →
/// allgather multi-node, swept over perturbation seeds with a rotating
/// straggler and rotating roots.
#[test]
fn gather_scatter_allgather_under_perturbation() {
    for seed in 0..10u64 {
        let n = 8; // 4x2
        let root = (seed as usize * 3) % n;
        let perturb =
            Perturb::standard(seed).with_straggler(seed as usize % n, SimTime::from_us(50));
        run_pinned(
            4,
            2,
            vec![
                step(Op::Gather, 256, root, false),
                step(Op::Scatter, 256, (root + 5) % n, seed % 2 == 0),
                step(Op::Allgather, 256, 0, false),
            ],
            perturb,
        );
    }
}

/// Minimal Done-skip reproducer: a gather hands its contribution
/// channel straight to a reduce_scatter. Before the consumed-in-order
/// guards this overwrote an undrained slot on some schedules.
#[test]
fn done_skip_gather_then_reduce_scatter() {
    for seed in 0..6u64 {
        let perturb = Perturb::standard(0x8c00 + seed);
        run_pinned(
            3,
            2,
            vec![
                step(Op::Gather, 64, seed as usize % 6, false),
                step(Op::ReduceScatter, 64, 0, false),
            ],
            perturb,
        );
    }
    // The two deterministic full-scenario seeds that first exposed it.
    let opts = ExploreOpts::default();
    for seed in [0x8c, 0xfc] {
        if let Err(f) = explore_one(seed, &opts) {
            panic!("historic Done-skip seed regressed:\n{f}");
        }
    }
}

/// Pair writer-handoff trigger: rotating-writer alltoallv cells under
/// heavy compute stalls plus a straggler — the exact mechanism of seed
/// 0x65. Stall-heavy because only stall+straggler widened the publish
/// window enough for a reader to lap a stalled publisher.
#[test]
fn pair_handoff_alltoallv_stall_straggler() {
    for seed in 0..8u64 {
        let perturb = Perturb {
            stall_permille: 45,
            stall_max: SimTime::from_us(6),
            ..Perturb::standard(0x6500 + seed)
        }
        .with_straggler(seed as usize % 8, SimTime::from_us(55));
        run_pinned(
            4,
            2,
            vec![
                step(Op::Alltoallv, 1024, 0, false),
                step(Op::Bcast, 4096, (seed as usize) % 8, true),
                step(Op::Alltoallv, 256, 0, false),
            ],
            perturb,
        );
    }
    // The exact seed whose derived scenario exposed the handoff race.
    if let Err(f) = explore_one(0x65, &ExploreOpts::default()) {
        panic!("historic pair-handoff seed regressed:\n{f}");
    }
}
