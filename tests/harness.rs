//! Tests of the measurement harness itself: the timing methodology
//! must be stable, comparable across implementations, and scale
//! sensibly with message size and processor count.

use simnet::{MachineConfig, SimTime, Topology};
use srm_cluster::{measure, ratio_percent, HarnessOpts, Impl, Op};

fn opts(iters: usize) -> HarnessOpts {
    HarnessOpts {
        iters,
        ..Default::default()
    }
}

#[test]
fn per_call_time_grows_with_message_size() {
    let topo = Topology::sp_16way(2);
    for imp in Impl::ALL {
        let mut last = SimTime::ZERO;
        for len in [8usize, 4096, 64 << 10, 512 << 10] {
            let m = measure(
                imp,
                MachineConfig::ibm_sp_colony(),
                topo,
                Op::Bcast,
                len,
                opts(2),
            );
            assert!(
                m.per_call > last,
                "{}: {}B not slower than previous size",
                imp.name(),
                len
            );
            last = m.per_call;
        }
    }
}

#[test]
fn barrier_time_grows_with_processor_count() {
    for imp in Impl::ALL {
        let mut last = SimTime::ZERO;
        for nodes in [1usize, 4, 8] {
            let m = measure(
                imp,
                MachineConfig::ibm_sp_colony(),
                Topology::sp_16way(nodes),
                Op::Barrier,
                8,
                opts(4),
            );
            assert!(
                m.per_call > last,
                "{}: barrier at {} nodes not slower",
                imp.name(),
                nodes
            );
            last = m.per_call;
        }
    }
}

#[test]
fn ratio_percent_math() {
    assert_eq!(
        ratio_percent(SimTime::from_us(20), SimTime::from_us(100)),
        20.0
    );
    assert_eq!(
        ratio_percent(SimTime::from_us(100), SimTime::from_us(100)),
        100.0
    );
}

#[test]
fn iters_average_is_stable() {
    // More iterations must not change the steady-state mean wildly.
    let topo = Topology::sp_16way(2);
    let a = measure(
        Impl::Srm,
        MachineConfig::ibm_sp_colony(),
        topo,
        Op::Bcast,
        4096,
        opts(3),
    );
    let b = measure(
        Impl::Srm,
        MachineConfig::ibm_sp_colony(),
        topo,
        Op::Bcast,
        4096,
        opts(9),
    );
    let ratio = a.per_call.as_us() / b.per_call.as_us();
    assert!(
        (0.5..2.0).contains(&ratio),
        "3-iter {} vs 9-iter {} differ too much",
        a.per_call,
        b.per_call
    );
}

#[test]
fn commodity_machine_also_works() {
    // The model is not hard-wired to the SP preset.
    let m = measure(
        Impl::Srm,
        MachineConfig::commodity_via_cluster(),
        Topology::new(4, 8),
        Op::Allreduce,
        8192,
        opts(2),
    );
    assert!(m.per_call > SimTime::ZERO);
    assert!(m.metrics.net_messages > 0);
}

#[test]
fn metrics_reflect_measured_region_only() {
    // The warmup call's traffic must not be attributed to the
    // measured region: a 1-iter and 3-iter run of the same op should
    // show metrics scaling roughly with iters.
    let topo = Topology::sp_16way(2);
    let one = measure(
        Impl::Srm,
        MachineConfig::ibm_sp_colony(),
        topo,
        Op::Bcast,
        1024,
        opts(1),
    );
    let three = measure(
        Impl::Srm,
        MachineConfig::ibm_sp_colony(),
        topo,
        Op::Bcast,
        1024,
        opts(3),
    );
    assert!(three.metrics.net_messages >= 2 * one.metrics.net_messages);
    assert!(three.metrics.net_messages <= 4 * one.metrics.net_messages.max(1));
}
