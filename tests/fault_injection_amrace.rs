//! Detector check for the dispatcher-side planted fault: the RMA
//! dispatcher acknowledges a message's completion counter *before* a
//! drawn AM-handler stall lands the payload (a premature ack). A
//! consumer parked on that counter wakes at the pre-stall time, and
//! because the kernel schedules min-time-first it runs *ahead* of the
//! still-stalled dispatcher and reads stale bytes.
//!
//! The fault only fires where a handler stall is actually drawn, so it
//! needs `am_stall_permille > 0` — the grammar-v2 perturbation space
//! draws it for most seeds. Seed 0x02 is the first of the default
//! sweep order that exposes it (the `explore` binary's
//! `--inject am-stall-race` mode detects it there too, well inside its
//! 128-seed CI budget).
//!
//! This file stays a single `#[test]` on purpose: the injection switch
//! is process-global, so no other test may share the binary (the
//! shared-memory raise race lives in `tests/fault_injection.rs` for
//! the same reason).

use srm_cluster::{explore_one, ExploreOpts};

#[test]
fn planted_am_stall_race_is_detected_and_reported() {
    let opts = ExploreOpts::default();

    rma::set_stall_counter_race(true);
    let faulty = explore_one(0x02, &opts);
    rma::set_stall_counter_race(false);

    let failure = faulty.expect_err("planted premature counter ack went undetected on seed 0x02");
    assert_eq!(failure.seed, 0x02);
    let text = failure.to_string();
    assert!(
        text.contains("--start-seed 0x0000000000000002"),
        "failure report lacks the exact reproducer seed:\n{text}"
    );
    assert!(
        text.contains("cargo run --release -p srm-bench --bin explore"),
        "failure report lacks the reproducer command:\n{text}"
    );

    // Same seed, fault removed: the harness is clean again, so the
    // detection above really was the planted bug.
    if let Err(f) = explore_one(0x02, &opts) {
        panic!("seed 0x02 still fails with the fault removed:\n{f}");
    }
}
