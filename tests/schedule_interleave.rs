//! Liveness scans for the plan/execute engine: every collective must
//! compose with every other on the same communicator without deadlock.
//!
//! The schedules share substrate state across calls — the cumulative
//! sequence cells, the per-slot contribution channels, the xfer
//! handoff buffer and the credit counters — so the dangerous bugs are
//! *interleaving* bugs: an op that leaves a channel out of sync with
//! the cumulative it advanced, or that returns from the call while
//! puts targeting it are still in flight. These scans sweep topology
//! shapes (including single-node and non-power-of-two), roots
//! (master/non-master, first/middle/last) and op sequences that mix
//! the channel users. A failure surfaces as a simulator-detected
//! deadlock naming the blocked ranks.

use collops::Collectives;
use simnet::{MachineConfig, Sim, Topology};
use srm::{SrmTuning, SrmWorld};

fn try_one(nodes: usize, tpn: usize, op: &str, len: usize, root: usize) -> Result<(), String> {
    let topo = Topology::new(nodes, tpn);
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    for rank in 0..n {
        let comm = world.comm(rank);
        let op = op.to_string();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer((n * len).max(1));
            match op.as_str() {
                "gather" => comm.gather(&ctx, &buf, len, root),
                "scatter" => comm.scatter(&ctx, &buf, len, root),
                "allgather" => comm.allgather(&ctx, &buf, len),
                _ => unreachable!(),
            }
            comm.shutdown(&ctx);
        });
    }
    sim.run().map(|_| ()).map_err(|e| format!("{e:?}"))
}

fn try_seq(nodes: usize, tpn: usize, calls: &[(&str, usize, usize)]) -> Result<(), String> {
    let topo = Topology::new(nodes, tpn);
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    for rank in 0..n {
        let comm = world.comm(rank);
        let calls: Vec<(String, usize, usize)> = calls
            .iter()
            .map(|&(op, len, root)| (op.to_string(), len, root))
            .collect();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let maxlen = calls.iter().map(|c| c.1).max().unwrap();
            // 2x: the split-buffer alltoall family needs send + recv halves.
            let buf = comm.alloc_buffer((2 * n * maxlen).max(8));
            for (op, len, root) in &calls {
                match op.as_str() {
                    "gather" => comm.gather(&ctx, &buf, *len, *root),
                    "scatter" => comm.scatter(&ctx, &buf, *len, *root),
                    "allgather" => comm.allgather(&ctx, &buf, *len),
                    "bcast" => comm.broadcast(&ctx, &buf, *len, *root),
                    "reduce" => comm.reduce(
                        &ctx,
                        &buf,
                        *len,
                        collops::DType::F64,
                        collops::ReduceOp::Sum,
                        *root,
                    ),
                    "allreduce" => comm.allreduce(
                        &ctx,
                        &buf,
                        *len,
                        collops::DType::F64,
                        collops::ReduceOp::Sum,
                    ),
                    "barrier" => comm.barrier(&ctx),
                    "alltoall" => comm.alltoall(&ctx, &buf, *len),
                    "alltoallv" => {
                        comm.alltoallv(&ctx, &buf, *len, &srm_cluster::ragged_counts(n, *len))
                    }
                    "reduce_scatter" => comm.reduce_scatter(
                        &ctx,
                        &buf,
                        *len,
                        collops::DType::F64,
                        collops::ReduceOp::Sum,
                    ),
                    _ => unreachable!(),
                }
            }
            comm.shutdown(&ctx);
        });
    }
    sim.run().map(|_| ()).map_err(|e| format!("{e:?}"))
}

/// Mixed-op sequences over one communicator: every op must leave the
/// shared substrate in a state every other op can start from.
#[test]
fn scan_sequences() {
    let len = 40_000; // chunks = 3 at the default 16 KB reduce_chunk
    let mut failures = Vec::new();
    for (nodes, tpn) in [(1, 4), (2, 2), (2, 3), (3, 2), (3, 4)] {
        let n = nodes * tpn;
        let seqs: Vec<Vec<(&str, usize, usize)>> = vec![
            vec![("reduce", len, 0), ("reduce", len, 1)],
            vec![("reduce", len, 0), ("reduce", len, n - 1)],
            vec![("reduce", len, 1), ("reduce", len, 1)],
            vec![("gather", len, 0), ("reduce", len, 0)],
            vec![("gather", len, n - 1), ("reduce", len, n - 1)],
            vec![("scatter", len, 0), ("reduce", len, 0)],
            vec![("scatter", len, n - 1), ("reduce", len, 1)],
            vec![("gather", len, 1), ("scatter", len, 1)],
            vec![("allgather", len, 0), ("reduce", len, 0)],
            vec![("reduce", len, 1), ("gather", len, 0)],
            vec![("reduce", len, 0), ("gather", len, n / 2)],
            vec![
                ("allreduce", len, 0),
                ("gather", len, 1),
                ("reduce", len, 2 % n),
            ],
            vec![
                ("bcast", len, 1),
                ("scatter", len, 1),
                ("allreduce", len, 0),
            ],
            // Pairwise ops share the contribution channels and landing
            // pair with the tree ops, and the credit counters with each
            // other — every adjacency must drain cleanly.
            vec![("alltoall", len, 0), ("alltoall", len, 0)],
            vec![("alltoall", len, 0), ("reduce", len, 0)],
            vec![("reduce", len, 1), ("alltoall", len, 0)],
            vec![("reduce_scatter", len, 0), ("allgather", len, 0)],
            vec![("allreduce", len, 0), ("reduce_scatter", len, 0)],
            vec![
                ("alltoallv", len, 0),
                ("alltoall", len, 0),
                ("barrier", 0, 0),
            ],
            vec![
                ("reduce_scatter", len, 0),
                ("bcast", len, 1),
                ("alltoall", len, 0),
            ],
        ];
        for calls in seqs {
            if let Err(e) = try_seq(nodes, tpn, &calls) {
                failures.push(format!(
                    "({nodes}x{tpn}) {:?}: {}",
                    calls,
                    &e[..e.len().min(160)]
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Single segmented ops across shapes, sizes and root placements.
#[test]
fn scan_single_ops() {
    let mut failures = Vec::new();
    for (nodes, tpn) in [
        (1, 1),
        (1, 4),
        (2, 1),
        (2, 2),
        (2, 3),
        (3, 2),
        (4, 1),
        (3, 4),
    ] {
        let n = nodes * tpn;
        for op in ["gather", "scatter", "allgather"] {
            for len in [1usize, 100, 5000, 20000] {
                let roots: Vec<usize> = if op == "allgather" {
                    vec![0]
                } else {
                    vec![0, n - 1, n / 2]
                };
                for root in roots {
                    if let Err(e) = try_one(nodes, tpn, op, len, root) {
                        failures.push(format!(
                            "({nodes}x{tpn}) {op} len={len} root={root}: {}",
                            &e[..e.len().min(160)]
                        ));
                    }
                }
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// One step of a mixed blocking/nonblocking sequence: `nb` ops are
/// issued and their requests held; blocking ops run in line (the
/// engine routes them through the pending queue when requests are
/// outstanding). All held requests are waited at the end, in issue
/// order or reversed.
#[derive(Clone)]
struct NbCall {
    op: String,
    len: usize,
    root: usize,
    nb: bool,
}

fn nb(op: &str, len: usize, root: usize) -> NbCall {
    NbCall {
        op: op.to_string(),
        len,
        root,
        nb: true,
    }
}

fn bl(op: &str, len: usize, root: usize) -> NbCall {
    NbCall {
        op: op.to_string(),
        len,
        root,
        nb: false,
    }
}

fn try_seq_nb(
    nodes: usize,
    tpn: usize,
    calls: &[NbCall],
    reverse_wait: bool,
) -> Result<(), String> {
    use collops::NonblockingCollectives;
    let topo = Topology::new(nodes, tpn);
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    for rank in 0..n {
        let comm = world.comm(rank);
        let calls = calls.to_vec();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            // Per-call buffers: outstanding schedules must not share
            // payload storage with each other.
            let bufs: Vec<_> = calls
                .iter()
                .map(|c| comm.alloc_buffer((2 * n * c.len).max(8)))
                .collect();
            let mut reqs = Vec::new();
            for (c, buf) in calls.iter().zip(&bufs) {
                let (dt, op) = (collops::DType::F64, collops::ReduceOp::Sum);
                if c.nb {
                    reqs.push(match c.op.as_str() {
                        "bcast" => comm.ibroadcast(&ctx, buf, c.len, c.root),
                        "reduce" => comm.ireduce(&ctx, buf, c.len, dt, op, c.root),
                        "allreduce" => comm.iallreduce(&ctx, buf, c.len, dt, op),
                        "gather" => comm.igather(&ctx, buf, c.len, c.root),
                        "scatter" => comm.iscatter(&ctx, buf, c.len, c.root),
                        "allgather" => comm.iallgather(&ctx, buf, c.len),
                        "barrier" => comm.ibarrier(&ctx),
                        "alltoall" => comm.ialltoall(&ctx, buf, c.len),
                        "alltoallv" => {
                            comm.ialltoallv(&ctx, buf, c.len, &srm_cluster::ragged_counts(n, c.len))
                        }
                        "reduce_scatter" => comm.ireduce_scatter(&ctx, buf, c.len, dt, op),
                        _ => unreachable!(),
                    });
                } else {
                    match c.op.as_str() {
                        "bcast" => comm.broadcast(&ctx, buf, c.len, c.root),
                        "reduce" => comm.reduce(&ctx, buf, c.len, dt, op, c.root),
                        "allreduce" => comm.allreduce(&ctx, buf, c.len, dt, op),
                        "gather" => comm.gather(&ctx, buf, c.len, c.root),
                        "scatter" => comm.scatter(&ctx, buf, c.len, c.root),
                        "allgather" => comm.allgather(&ctx, buf, c.len),
                        "barrier" => comm.barrier(&ctx),
                        "alltoall" => comm.alltoall(&ctx, buf, c.len),
                        "alltoallv" => {
                            comm.alltoallv(&ctx, buf, c.len, &srm_cluster::ragged_counts(n, c.len))
                        }
                        "reduce_scatter" => comm.reduce_scatter(&ctx, buf, c.len, dt, op),
                        _ => unreachable!(),
                    }
                }
            }
            if reverse_wait {
                reqs.reverse();
            }
            comm.wait_all(&ctx, reqs);
            comm.shutdown(&ctx);
        });
    }
    sim.run().map(|_| ()).map_err(|e| format!("{e:?}"))
}

/// Mixed blocking/nonblocking sequences with at least two outstanding
/// schedules per rank, across substrate-sharing op pairs, shapes and
/// wait orders. A failure is a simulator-detected deadlock.
#[test]
fn scan_nonblocking_sequences() {
    let len = 40_000; // multi-chunk through the 16 KB reduce pipeline
    let big = 100_000; // above the 64 KB switch: address-exchange path
    let mut failures = Vec::new();
    for (nodes, tpn) in [(1, 4), (2, 2), (2, 3), (3, 2)] {
        let n = nodes * tpn;
        let seqs: Vec<Vec<NbCall>> = vec![
            // Two outstanding on the same substrate (per-class FIFO).
            vec![nb("bcast", len, 0), nb("bcast", len, n - 1)],
            vec![nb("reduce", len, 0), nb("reduce", len, 1 % n)],
            vec![nb("barrier", 0, 0), nb("barrier", 0, 0)],
            // Different substrates: these genuinely interleave.
            vec![nb("bcast", len, 0), nb("reduce", len, 0)],
            vec![
                nb("reduce", len, 0),
                nb("bcast", len, 1 % n),
                nb("barrier", 0, 0),
            ],
            vec![nb("gather", len, 0), nb("scatter", len, n - 1)],
            vec![nb("allgather", len, 0), nb("bcast", len, 0)],
            vec![nb("allreduce", len, 0), nb("gather", len, 1 % n)],
            // Large-protocol broadcasts: address mailboxes must
            // serialize across outstanding schedules.
            vec![nb("bcast", big, 0), nb("bcast", big, n - 1)],
            vec![nb("bcast", big, 0), nb("reduce", len, 0)],
            // Blocking ops issued while requests are outstanding route
            // through the pending queue.
            vec![nb("bcast", len, 0), bl("reduce", len, 0)],
            vec![
                nb("reduce", len, 0),
                bl("barrier", 0, 0),
                nb("bcast", len, 0),
            ],
            vec![
                nb("barrier", 0, 0),
                bl("bcast", len, 1 % n),
                nb("reduce", len, 0),
            ],
            // Three-plus outstanding with a mixed tail.
            vec![
                nb("bcast", len, 0),
                nb("reduce", len, 1 % n),
                nb("barrier", 0, 0),
                bl("allreduce", len, 0),
            ],
            // Pairwise class (CL_PAIRWISE) against itself and against
            // the tree classes it shares contribution channels with.
            vec![nb("alltoall", len, 0), nb("alltoall", len, 0)],
            vec![nb("alltoall", len, 0), nb("reduce", len, 0)],
            vec![nb("reduce_scatter", len, 0), nb("alltoall", len, 0)],
            vec![
                nb("alltoallv", len, 0),
                bl("barrier", 0, 0),
                nb("bcast", len, 0),
            ],
            vec![
                nb("reduce_scatter", len, 0),
                nb("allgather", len, 0),
                bl("alltoall", len, 0),
            ],
        ];
        for calls in seqs {
            for reverse in [false, true] {
                if let Err(e) = try_seq_nb(nodes, tpn, &calls, reverse) {
                    let desc: Vec<String> = calls
                        .iter()
                        .map(|c| {
                            format!(
                                "{}{}({},{})",
                                if c.nb { "i" } else { "" },
                                c.op,
                                c.len,
                                c.root
                            )
                        })
                        .collect();
                    failures.push(format!(
                        "({nodes}x{tpn}) rev={reverse} {:?}: {}",
                        desc,
                        &e[..e.len().min(160)]
                    ));
                }
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
