//! Replayability of the seeded perturbation layer: a perturbed run is a
//! pure function of `(seed, config)`.
//!
//! Three properties pin this down:
//!
//! * the same `(seed, config)` replays **bit-exactly** — identical
//!   event stream (trace), identical final [`MetricsSnapshot`] and
//!   identical virtual makespan;
//! * different seeds genuinely explore — across a handful of seeds the
//!   injected-event counts and makespans are not all the same;
//! * an installed-but-disabled config (`Perturb::new`, every mechanism
//!   off) is indistinguishable from no config at all.
//!
//! [`MetricsSnapshot`]: simnet::MetricsSnapshot

use collops::{Collectives, DType, ReduceOp};
use simnet::{MachineConfig, Perturb, Sim, SimTime, Topology, Trace};
use srm::{SrmTuning, SrmWorld};
use srm_cluster::{explore_one, ExploreOpts};

/// One fixed perturbed workload — a broadcast, an allreduce and a
/// barrier on 2x3 — returning the run's trace, metrics and makespan.
fn run_traced(perturb: Option<Perturb>) -> (Vec<simnet::TraceEvent>, simnet::Report) {
    let topo = Topology::new(2, 3);
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    if let Some(p) = perturb {
        sim.set_perturb(p);
    }
    let trace = Trace::new();
    sim.attach_trace(trace.clone());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(4096);
            if rank == 1 {
                buf.with_mut(|d| d.fill(0x5A));
            }
            comm.broadcast(&ctx, &buf, 4096, 1);
            buf.with(|d| assert!(d.iter().all(|&b| b == 0x5A), "rank {rank} payload"));
            comm.allreduce(&ctx, &buf, 256, DType::U64, ReduceOp::Sum);
            comm.barrier(&ctx);
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("perturbed run completes");
    (trace.events(), report)
}

/// Same `(seed, config)` ⇒ identical event stream, metrics, makespan.
#[test]
fn same_seed_replays_bit_exactly() {
    let cfg = Perturb::standard(0xDECAF).with_straggler(3, SimTime::from_us(40));
    let (ev_a, rep_a) = run_traced(Some(cfg));
    let (ev_b, rep_b) = run_traced(Some(cfg));
    assert!(
        rep_a.metrics.perturb_events > 0,
        "the standard preset must inject something into this workload"
    );
    assert_eq!(ev_a, ev_b, "event streams diverged under one seed");
    assert_eq!(rep_a.metrics, rep_b.metrics, "metrics diverged");
    assert_eq!(rep_a.end_time, rep_b.end_time, "makespan diverged");
}

/// The same property through the stress harness: one seed, one outcome.
#[test]
fn explore_one_is_replayable() {
    let opts = ExploreOpts::default();
    let a = explore_one(0x2A, &opts).expect("seed 0x2a is clean");
    let b = explore_one(0x2A, &opts).expect("seed 0x2a is clean");
    assert_eq!(a.scenario.to_string(), b.scenario.to_string());
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.metrics, b.metrics);
}

/// Different seeds explore different schedules: not every run looks
/// the same.
#[test]
fn different_seeds_differ() {
    let runs: Vec<(u64, SimTime)> = (0..4u64)
        .map(|s| {
            let (_, rep) = run_traced(Some(Perturb::standard(s)));
            (rep.metrics.perturb_delay_ps, rep.end_time)
        })
        .collect();
    assert!(
        runs.windows(2).any(|w| w[0] != w[1]),
        "four seeds produced identical perturbations: {runs:?}"
    );
}

/// The dispatcher- and link-level mechanisms added with grammar v2
/// (interrupt coalescing, AM handler stalls, per-link wire stretch,
/// transient dips) replay bit-exactly from `(seed, config)` like the
/// original four, and their dedicated counters stay subsets of the
/// overall event count.
#[test]
fn dispatcher_and_link_mechanisms_replay_bit_exactly() {
    let cfg = Perturb {
        coalesce_permille: 300,
        coalesce_max: SimTime::from_us(3),
        am_stall_permille: 250,
        am_stall_max: SimTime::from_us(4),
        bw_permille: 500,
        bw_dip_permille: 80,
        bw_dip_mult: 3,
        bw_dip_window: SimTime::from_us(30),
        ..Perturb::new(0xB0B0)
    };
    let (ev_a, rep_a) = run_traced(Some(cfg));
    let (ev_b, rep_b) = run_traced(Some(cfg));
    assert!(
        rep_a.metrics.perturb_bw_events > 0,
        "a 500-permille link stretch must touch this workload's wire traffic"
    );
    assert!(
        rep_a.metrics.perturb_dispatch_events > 0,
        "a 250-permille AM-stall rate must hit some dispatch on this workload"
    );
    assert!(
        rep_a.metrics.perturb_dispatch_events + rep_a.metrics.perturb_bw_events
            <= rep_a.metrics.perturb_events,
        "dispatcher/link counters must be subsets of perturb_events"
    );
    assert_eq!(ev_a, ev_b, "event streams diverged under one seed");
    assert_eq!(rep_a.metrics, rep_b.metrics, "metrics diverged");
    assert_eq!(rep_a.end_time, rep_b.end_time, "makespan diverged");
}

/// A config that enables only the original (PR 7) mechanisms draws the
/// same stream whether or not the new fields exist: the new mechanisms
/// consume no draws when disabled, so the old replay seeds stay valid.
#[test]
fn new_mechanisms_do_not_shift_old_streams() {
    let old_only = Perturb {
        delivery_jitter: SimTime::from_us(3),
        reorder_permille: 150,
        reorder_window: SimTime::from_us(15),
        stall_permille: 25,
        stall_max: SimTime::from_us(4),
        ..Perturb::new(0x717E)
    };
    let (ev_a, rep_a) = run_traced(Some(old_only));
    let (ev_b, rep_b) = run_traced(Some(old_only));
    assert!(rep_a.metrics.perturb_events > 0);
    assert_eq!(rep_a.metrics.perturb_dispatch_events, 0);
    assert_eq!(rep_a.metrics.perturb_bw_events, 0);
    assert_eq!(ev_a, ev_b);
    assert_eq!(rep_a.metrics, rep_b.metrics);
    assert_eq!(rep_a.end_time, rep_b.end_time);
}

/// A config with every mechanism off injects nothing and reproduces
/// the unperturbed baseline exactly.
#[test]
fn disabled_config_is_the_baseline() {
    let (ev_off, rep_off) = run_traced(None);
    let (ev_nil, rep_nil) = run_traced(Some(Perturb::new(0xFEED)));
    assert_eq!(rep_nil.metrics.perturb_events, 0);
    assert_eq!(ev_off, ev_nil, "disabled config changed the event stream");
    assert_eq!(rep_off.end_time, rep_nil.end_time);
    assert_eq!(rep_off.metrics, rep_nil.metrics);
}
