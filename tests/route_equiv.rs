//! Route equivalence for the pairwise collectives: the staged route
//! (chunked puts through the landing rings, credit-throttled) and the
//! direct route (per-call address exchange, one put straight into the
//! destination user buffer) must produce bit-identical results for
//! alltoall, alltoallv and reduce_scatter — on plain runs straddling
//! the default threshold, on perturbed pinned scenarios, and across
//! explorer seeds with either route forced for every segment size.

use collops::{Collectives, DType, ReduceOp};
use simnet::{MachineConfig, MetricsSnapshot, Perturb, Sim, Topology};
use srm::{SegmentRoute, SrmTuning, SrmWorld};
use srm_cluster::{
    explore_sweep, ragged_counts, run_scenario, AliasMode, ExploreOpts, Op, ProgStep, Scenario,
};
use std::sync::{Arc, Mutex};

/// A tuning that forces every pairwise segment down `route`.
fn forced(route: SegmentRoute) -> SrmTuning {
    SrmTuning {
        pairwise_direct_min: match route {
            SegmentRoute::Direct => 0,
            SegmentRoute::Staged => usize::MAX,
        },
        ..SrmTuning::default()
    }
}

/// Run one pairwise collective on every rank with deterministic
/// payloads; return final buffers and the run metrics.
fn run_op(
    topo: Topology,
    tuning: SrmTuning,
    op: Op,
    len: usize,
) -> (Vec<Vec<u8>>, MetricsSnapshot) {
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, tuning);
    let out = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let counts = Arc::new(ragged_counts(n, len));
    for rank in 0..n {
        let comm = world.comm(rank);
        let out = out.clone();
        let counts = counts.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(op.buf_len(len, n));
            buf.with_mut(|d| {
                for (i, x) in d.iter_mut().enumerate() {
                    *x = (i as u8).wrapping_mul(29).wrapping_add(rank as u8 ^ 0xC3);
                }
            });
            match op {
                Op::Alltoall => comm.alltoall(&ctx, &buf, len),
                Op::Alltoallv => comm.alltoallv(&ctx, &buf, len, &counts),
                Op::ReduceScatter => {
                    comm.reduce_scatter(&ctx, &buf, len, DType::U64, ReduceOp::Sum)
                }
                _ => unreachable!("route equivalence covers the pairwise ops"),
            }
            out.lock().unwrap()[rank] = buf.with(|d| d.to_vec());
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("simulation completes");
    let results = Arc::try_unwrap(out).unwrap().into_inner().unwrap();
    (results, report.metrics)
}

/// Both routes, bit for bit, for every pairwise op at sizes below, at
/// and above the default 64 KB threshold — the forced-direct run must
/// actually take the direct route (and skip the rings entirely), the
/// forced-staged run must never touch it.
#[test]
fn forced_routes_bit_exact_for_all_pairwise_ops() {
    let topo = Topology::new(3, 2);
    for op in [Op::Alltoall, Op::Alltoallv, Op::ReduceScatter] {
        for len in [8 * 1024usize, 64 * 1024, 128 * 1024] {
            let (staged, ms) = run_op(topo, forced(SegmentRoute::Staged), op, len);
            let (direct, md) = run_op(topo, forced(SegmentRoute::Direct), op, len);
            assert_eq!(
                staged, direct,
                "{op:?} at {len} B: routes disagree on the results"
            );
            assert_eq!(
                ms.pairwise_direct_puts, 0,
                "{op:?}/{len}: staged went direct"
            );
            assert!(
                ms.pairwise_puts > 0,
                "{op:?}/{len}: staged run must use the rings"
            );
            assert!(
                md.pairwise_direct_puts > 0,
                "{op:?}/{len}: direct run must issue direct puts"
            );
            assert_eq!(
                md.pairwise_puts, 0,
                "{op:?}/{len}: direct run must not touch the rings"
            );
        }
    }
}

/// The default tuning switches routes exactly at `pairwise_direct_min`
/// (64 KB): below it the rings carry the data, at it the planner goes
/// direct — without any forcing.
#[test]
fn default_threshold_picks_the_route() {
    let topo = Topology::new(2, 2);
    let (_, below) = run_op(topo, SrmTuning::default(), Op::Alltoall, 32 * 1024);
    assert_eq!(below.pairwise_direct_puts, 0);
    assert!(below.pairwise_puts > 0);
    let (_, at) = run_op(topo, SrmTuning::default(), Op::Alltoall, 64 * 1024);
    assert!(at.pairwise_direct_puts > 0);
    assert_eq!(at.pairwise_puts, 0);
}

/// A pinned perturbed scenario mixing all three pairwise ops (one of
/// them nonblocking, overlapping the next step) verifies on both
/// forced routes — `run_scenario` checks every rank's buffer against
/// the sequential references, so a clean pass IS bit-exactness.
#[test]
fn pinned_perturbed_pairwise_scenario_on_both_routes() {
    let step = |op, seg, nonblocking| ProgStep {
        op,
        comm: 0,
        seg,
        root: 0,
        nonblocking,
        alias: AliasMode::None,
    };
    for route in [SegmentRoute::Staged, SegmentRoute::Direct] {
        let scenario = Scenario {
            nodes: 3,
            tpn: 2,
            perturb: Perturb::standard(0xD1EC_7040),
            groups: Vec::new(),
            splits: Vec::new(),
            steps: vec![
                step(Op::Alltoall, 1024, true),
                step(Op::ReduceScatter, 512, false),
                step(Op::Alltoallv, 2048, false),
                step(Op::Alltoall, 256, false),
            ],
        };
        let opts = ExploreOpts {
            nodes: Some(3),
            tpn: Some(2),
            route: Some(route),
            ..ExploreOpts::default()
        };
        if let Err(f) = run_scenario(scenario.perturb.seed, scenario, &opts) {
            panic!("pinned pairwise scenario failed on {route:?} route:\n{f}");
        }
    }
}

/// Explorer seeds stay clean with either route forced for EVERY
/// pairwise segment: same seeds, same scenarios, both routes — every
/// collective call still verifies against its reference under the full
/// perturbation surface (the CI smoke runs a larger such sweep).
#[test]
fn explorer_seeds_clean_under_forced_routes() {
    for route in [SegmentRoute::Direct, SegmentRoute::Staged] {
        let opts = ExploreOpts {
            route: Some(route),
            ..ExploreOpts::default()
        };
        let summary = explore_sweep(0, 6, &opts);
        assert!(
            summary.failures.is_empty(),
            "forced {route:?} sweep failed:\n{}",
            summary
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(summary.explored, 6);
        assert!(summary.calls_checked > 0);
    }
}
