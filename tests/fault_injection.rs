//! The stress harness must *catch* a planted bug, not just pass clean
//! sweeps — otherwise a green sweep proves nothing about the checks.
//!
//! The planted fault reverts `SpinFlag::raise` to a plain (non-
//! monotone) store and omits the "contrib consumed in order" plan
//! guards — together re-opening the exact out-of-order contribution
//! overwrite the harness originally found. Seed 0x07 is the first seed
//! of the grammar-v2 sweep order whose schedule exposes it (the
//! `explore` binary's `--inject raise-race` mode detects it there too,
//! well inside its 128-seed CI budget); this test replays that seed
//! with the fault in and asserts the harness reports a failure *with a
//! usable reproducer*, then replays it with the fault out and asserts
//! clean.
//!
//! This file stays a single `#[test]` on purpose: the injection
//! switches are process-global, so no other test may share the binary
//! (the dispatcher-side premature-ack fault lives in
//! `tests/fault_injection_amrace.rs` for the same reason).

use srm_cluster::{explore_one, ExploreOpts};

#[test]
fn planted_raise_race_is_detected_and_reported() {
    let opts = ExploreOpts::default();

    shmem::set_nonmonotone_raise(true);
    srm::set_skip_order_guards(true);
    let faulty = explore_one(0x07, &opts);
    shmem::set_nonmonotone_raise(false);
    srm::set_skip_order_guards(false);

    let failure = faulty.expect_err(
        "planted non-monotone raise + missing order guards went undetected on seed 0x07",
    );
    assert_eq!(failure.seed, 0x07);
    let text = failure.to_string();
    assert!(
        text.contains("--start-seed 0x0000000000000007"),
        "failure report lacks the exact reproducer seed:\n{text}"
    );
    assert!(
        text.contains("cargo run --release -p srm-bench --bin explore"),
        "failure report lacks the reproducer command:\n{text}"
    );

    // Same seed, fault removed: the harness is clean again, so the
    // detection above really was the planted bug.
    if let Err(f) = explore_one(0x07, &opts) {
        panic!("seed 0x07 still fails with the fault removed:\n{f}");
    }
}
