//! Tier-1 smoke sweep of the schedule-exploration stress harness.
//!
//! These tests run a small number of seeds through
//! [`srm_cluster::explore_one`] — enough to exercise the derivation
//! grammar, the perturbation layer and every invariant check on every
//! CI run. The big sweeps (hundreds of seeds, release mode) live in
//! the bench-crate `explore` binary and the CI `stress-smoke` job.

use srm_cluster::{explore_sweep, ExploreOpts};

fn assert_clean(summary: &srm_cluster::ExploreSummary) {
    if !summary.failures.is_empty() {
        for f in &summary.failures {
            eprintln!("{f}");
        }
        panic!(
            "{} of {} seeds failed (first repro above)",
            summary.failures.len(),
            summary.explored
        );
    }
}

#[test]
fn smoke_sweep_random_topologies() {
    let opts = ExploreOpts::default();
    let summary = explore_sweep(0, 10, &opts);
    assert_clean(&summary);
    assert_eq!(summary.explored, 10);
    assert!(
        summary.perturb_events > 0,
        "ten perturbed scenarios must inject at least one event"
    );
    assert!(summary.calls_checked > 0);
}

#[test]
fn smoke_sweep_fixed_four_by_two() {
    let opts = ExploreOpts {
        nodes: Some(4),
        tpn: Some(2),
        ..ExploreOpts::default()
    };
    let summary = explore_sweep(100, 8, &opts);
    assert_clean(&summary);
    assert_eq!(summary.explored, 8);
}

#[test]
fn smoke_sweep_without_subgroups() {
    let opts = ExploreOpts {
        subgroups: false,
        max_ops: 4,
        ..ExploreOpts::default()
    };
    let summary = explore_sweep(200, 6, &opts);
    assert_clean(&summary);
}
