//! Tier-1 smoke sweep of the schedule-exploration stress harness.
//!
//! These tests run a small number of seeds through
//! [`srm_cluster::explore_one`] — enough to exercise the derivation
//! grammar, the perturbation layer and every invariant check on every
//! CI run. The big sweeps (hundreds of seeds, release mode) live in
//! the bench-crate `explore` binary and the CI `stress-smoke` job.

use simnet::Perturb;
use srm_cluster::{
    derive_scenario, explore_sweep, run_scenario, AliasMode, ExploreOpts, Op, ProgStep, Scenario,
    SplitSpec,
};

fn assert_clean(summary: &srm_cluster::ExploreSummary) {
    if !summary.failures.is_empty() {
        for f in &summary.failures {
            eprintln!("{f}");
        }
        panic!(
            "{} of {} seeds failed (first repro above)",
            summary.failures.len(),
            summary.explored
        );
    }
}

#[test]
fn smoke_sweep_random_topologies() {
    let opts = ExploreOpts::default();
    let summary = explore_sweep(0, 10, &opts);
    assert_clean(&summary);
    assert_eq!(summary.explored, 10);
    assert!(
        summary.perturb_events > 0,
        "ten perturbed scenarios must inject at least one event"
    );
    assert!(summary.calls_checked > 0);
}

#[test]
fn smoke_sweep_fixed_four_by_two() {
    let opts = ExploreOpts {
        nodes: Some(4),
        tpn: Some(2),
        ..ExploreOpts::default()
    };
    let summary = explore_sweep(100, 8, &opts);
    assert_clean(&summary);
    assert_eq!(summary.explored, 8);
}

#[test]
fn smoke_sweep_without_subgroups() {
    let opts = ExploreOpts {
        subgroups: false,
        max_ops: 4,
        ..ExploreOpts::default()
    };
    let summary = explore_sweep(200, 6, &opts);
    assert_clean(&summary);
}

/// The v2 grammar actually reaches its new constructs: within a small
/// seed prefix, at least one derived scenario schedules a step on a
/// `comm_split` communicator and at least one carries a buffer-aliasing
/// step. Derivation is pure, so this is cheap and pins reachability
/// (a grammar regression that silently stops generating splits or
/// aliases fails here, not in some never-noticed coverage gap).
#[test]
fn grammar_v2_features_are_reachable() {
    let opts = ExploreOpts::default();
    let mut split_step = false;
    let mut alias_step = false;
    for seed in 0..64u64 {
        let s = derive_scenario(seed, &opts);
        split_step |= s.steps.iter().any(|st| st.comm > s.groups.len());
        alias_step |= s.steps.iter().any(|st| st.alias != AliasMode::None);
    }
    assert!(
        split_step,
        "no seed in 0..64 stepped on a comm_split communicator"
    );
    assert!(alias_step, "no seed in 0..64 drew a buffer-aliasing step");
}

fn pinned(opts: &ExploreOpts, scenario: Scenario) {
    if let Err(f) = run_scenario(scenario.perturb.seed, scenario, opts) {
        panic!("pinned scenario failed:\n{f}");
    }
}

/// Pinned comm_split regression: a reversed round-robin split with an
/// excluded rank (parts `[6,4,2,0]` and `[7,5,1]`, rank 3 out), mixing
/// split-communicator collectives with world steps under the standard
/// perturbation (which enables the dispatcher and link mechanisms).
#[test]
fn pinned_comm_split_scenario() {
    let step = |op, comm, seg, root, nonblocking| ProgStep {
        op,
        comm,
        seg,
        root,
        nonblocking,
        alias: AliasMode::None,
    };
    let scenario = Scenario {
        nodes: 4,
        tpn: 2,
        perturb: Perturb::standard(0xC011_5711),
        groups: Vec::new(),
        splits: vec![SplitSpec {
            ncolors: 2,
            block: false,
            rev: true,
            exclude: Some(3),
        }],
        steps: vec![
            step(Op::Allreduce, 1, 256, 0, false),
            step(Op::Bcast, 1, 64, 2, true),
            step(Op::Gather, 0, 64, 5, false),
            step(Op::Allgather, 1, 8, 0, false),
        ],
    };
    let opts = ExploreOpts {
        nodes: Some(4),
        tpn: Some(2),
        ..ExploreOpts::default()
    };
    pinned(&opts, scenario);
}

/// Pinned buffer-aliasing regression: an in-place chained blocking
/// allreduce followed by a shared-root pair of nonblocking broadcasts,
/// with an ordinary step in between so the aliased calls overlap other
/// traffic.
#[test]
fn pinned_buffer_aliasing_scenario() {
    let scenario = Scenario {
        nodes: 3,
        tpn: 2,
        perturb: Perturb::standard(0xA11A_5ED5),
        groups: Vec::new(),
        splits: Vec::new(),
        steps: vec![
            ProgStep {
                op: Op::Allreduce,
                comm: 0,
                seg: 1024,
                root: 0,
                nonblocking: false,
                alias: AliasMode::ChainBlocking,
            },
            ProgStep {
                op: Op::Bcast,
                comm: 0,
                seg: 4096,
                root: 3,
                nonblocking: true,
                alias: AliasMode::SharedRoot,
            },
            ProgStep {
                op: Op::ReduceScatter,
                comm: 0,
                seg: 64,
                root: 0,
                nonblocking: false,
                alias: AliasMode::None,
            },
        ],
    };
    let opts = ExploreOpts {
        nodes: Some(3),
        tpn: Some(2),
        ..ExploreOpts::default()
    };
    pinned(&opts, scenario);
}
