//! Cross-implementation integration tests: SRM and both MPI baselines
//! run the same collectives on the same inputs; results must agree,
//! and the paper's structural claims must hold in the metrics and in
//! the modelled times.

use collops::{from_bytes_u64, reference_reduce, to_bytes_u64, Collectives, DType, ReduceOp};
use mpi_coll::MpiColl;
use msg::{MsgWorld, Vendor};
use simnet::{MachineConfig, Sim, SimTime, Topology};
use srm::{SrmTuning, SrmWorld};
use srm_cluster::{measure, HarnessOpts, Impl, Op};
use std::sync::{Arc, Mutex};

/// Run one collective under an implementation, returning every rank's
/// final buffer.
fn run_once(
    imp: Impl,
    topo: Topology,
    len: usize,
    init: impl Fn(usize) -> Vec<u8> + Send + Sync + 'static,
    op: Op,
    root: usize,
) -> Vec<Vec<u8>> {
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    enum World {
        Srm(SrmWorld),
        Mpi(MsgWorld),
    }
    let world = match imp {
        Impl::Srm => World::Srm(SrmWorld::new(&mut sim, topo, SrmTuning::default())),
        Impl::IbmMpi => World::Mpi(MsgWorld::new(&mut sim, topo, Vendor::IbmMpi)),
        Impl::Mpich => World::Mpi(MsgWorld::new(&mut sim, topo, Vendor::Mpich)),
    };
    let out = Arc::new(Mutex::new(vec![Vec::new(); topo.nprocs()]));
    let init = Arc::new(init);
    for rank in 0..topo.nprocs() {
        let (coll, srm_comm): (Box<dyn Collectives + Send>, Option<srm::SrmComm>) = match &world {
            World::Srm(w) => (Box::new(w.comm(rank)), Some(w.comm(rank))),
            World::Mpi(w) => (Box::new(MpiColl::new(w.endpoint(rank))), None),
        };
        let out = out.clone();
        let init = init.clone();
        let nprocs = topo.nprocs();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            // `init` may fill anywhere up to the op's full working set
            // (e.g. the send half of a split alltoall buffer); the rest
            // starts zeroed.
            let buf = shmem::ShmBuffer::new(op.buf_len(len, nprocs));
            let image = init(rank);
            buf.with_mut(|d| d[..image.len()].copy_from_slice(&image));
            match op {
                Op::Bcast => coll.broadcast(&ctx, &buf, len, root),
                Op::Reduce => coll.reduce(&ctx, &buf, len, DType::U64, ReduceOp::Sum, root),
                Op::Allreduce => coll.allreduce(&ctx, &buf, len, DType::U64, ReduceOp::Sum),
                Op::Barrier => coll.barrier(&ctx),
                Op::Alltoall => coll.alltoall(&ctx, &buf, len),
                Op::Alltoallv => {
                    coll.alltoallv(&ctx, &buf, len, &srm_cluster::ragged_counts(nprocs, len))
                }
                Op::ReduceScatter => {
                    coll.reduce_scatter(&ctx, &buf, len, DType::U64, ReduceOp::Sum)
                }
                // Segment ops need nprocs*len buffers; their cross-impl
                // agreement lives in tests/prop_collectives.rs.
                Op::Gather | Op::Scatter | Op::Allgather => unreachable!(),
            }
            out.lock().unwrap()[rank] = buf.with(|d| d.to_vec());
            if let Some(c) = srm_comm {
                c.shutdown(&ctx);
            }
        });
    }
    sim.run().expect("run completes");
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

#[test]
fn all_implementations_agree_on_broadcast() {
    let topo = Topology::new(3, 4);
    let len = 24 << 10;
    let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    let mut reference = None;
    for imp in Impl::ALL {
        let p = payload.clone();
        let results = run_once(
            imp,
            topo,
            len,
            move |rank| if rank == 5 { p.clone() } else { vec![0; len] },
            Op::Bcast,
            5,
        );
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(r, &payload, "{} rank {rank}", imp.name());
        }
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(r, &results, "{} diverged", imp.name()),
        }
    }
}

#[test]
fn all_implementations_agree_on_allreduce() {
    let topo = Topology::new(2, 5);
    let n = topo.nprocs();
    let elems = 128usize;
    let len = elems * 8;
    let contribs: Vec<Vec<u8>> = (0..n)
        .map(|r| to_bytes_u64(&(0..elems).map(|i| (r * 3 + i) as u64).collect::<Vec<_>>()))
        .collect();
    let expect = reference_reduce(DType::U64, ReduceOp::Sum, &contribs);
    for imp in Impl::ALL {
        let c = contribs.clone();
        let results = run_once(imp, topo, len, move |r| c[r].clone(), Op::Allreduce, 0);
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(
                from_bytes_u64(r),
                from_bytes_u64(&expect),
                "{} rank {rank}",
                imp.name()
            );
        }
    }
}

#[test]
fn all_implementations_agree_on_reduce_at_root() {
    let topo = Topology::new(4, 3);
    let n = topo.nprocs();
    let len = 64usize;
    let contribs: Vec<Vec<u8>> = (0..n).map(|r| to_bytes_u64(&[(r * r) as u64; 8])).collect();
    let expect = reference_reduce(DType::U64, ReduceOp::Sum, &contribs);
    for imp in Impl::ALL {
        let c = contribs.clone();
        let results = run_once(imp, topo, len, move |r| c[r].clone(), Op::Reduce, 7);
        assert_eq!(results[7], expect, "{} root buffer", imp.name());
    }
}

/// Deterministic pattern for pairwise-exchange payloads: the byte `k`
/// of the segment rank `i` sends to rank `j`.
fn pair_byte(i: usize, j: usize, k: usize) -> u8 {
    ((i * 37 + j * 11 + k * 3 + 5) % 251) as u8
}

/// All three implementations produce bit-identical results for the
/// pairwise exchange family — alltoall, ragged alltoallv and
/// reduce-scatter — on a non-power-of-two rank count.
#[test]
fn all_implementations_agree_on_alltoall_family() {
    let topo = Topology::new(3, 2); // 6 ranks, non-power-of-two
    let n = topo.nprocs();
    let len = 96usize;

    // alltoall: recv segment i on rank r must be what i sent to r.
    let mut reference = None;
    for imp in Impl::ALL {
        let results = run_once(
            imp,
            topo,
            len,
            move |rank| {
                let mut v = vec![0u8; 2 * n * len];
                for j in 0..n {
                    for k in 0..len {
                        v[j * len + k] = pair_byte(rank, j, k);
                    }
                }
                v
            },
            Op::Alltoall,
            0,
        );
        for (r, outb) in results.iter().enumerate() {
            for i in 0..n {
                for k in 0..len {
                    assert_eq!(
                        outb[n * len + i * len + k],
                        pair_byte(i, r, k),
                        "{} alltoall rank {r} segment from {i} byte {k}",
                        imp.name()
                    );
                }
            }
        }
        match &reference {
            None => reference = Some(results),
            Some(rf) => assert_eq!(rf, &results, "{} alltoall diverged", imp.name()),
        }
    }

    // alltoallv: only the ragged live prefixes move; slack stays zero.
    let counts = srm_cluster::ragged_counts(n, len);
    let mut reference = None;
    for imp in Impl::ALL {
        let c = counts.clone();
        let results = run_once(
            imp,
            topo,
            len,
            move |rank| {
                let mut v = vec![0u8; 2 * n * len];
                for j in 0..n {
                    for k in 0..c[rank * n + j] {
                        v[j * len + k] = pair_byte(rank, j, k);
                    }
                }
                v
            },
            Op::Alltoallv,
            0,
        );
        for (r, outb) in results.iter().enumerate() {
            for i in 0..n {
                for k in 0..len {
                    let expect = if k < counts[i * n + r] {
                        pair_byte(i, r, k)
                    } else {
                        0
                    };
                    assert_eq!(
                        outb[n * len + i * len + k],
                        expect,
                        "{} alltoallv rank {r} segment from {i} byte {k}",
                        imp.name()
                    );
                }
            }
        }
        match &reference {
            None => reference = Some(results),
            Some(rf) => assert_eq!(rf, &results, "{} alltoallv diverged", imp.name()),
        }
    }

    // reduce-scatter: every rank's own block must equal the elementwise
    // sum of all contributions for that block (u64 sum: bit-exact
    // regardless of combine order).
    let elems = len / 8;
    let contrib = move |rank: usize| -> Vec<u8> {
        let vals: Vec<u64> = (0..n * elems)
            .map(|ix| (rank * 1009 + ix * 17 + 1) as u64)
            .collect();
        to_bytes_u64(&vals)
    };
    let expect: Vec<Vec<u8>> = {
        let contribs: Vec<Vec<u8>> = (0..n).map(contrib).collect();
        let full = reference_reduce(DType::U64, ReduceOp::Sum, &contribs);
        (0..n)
            .map(|j| full[j * len..(j + 1) * len].to_vec())
            .collect()
    };
    for imp in Impl::ALL {
        let results = run_once(imp, topo, len, contrib, Op::ReduceScatter, 0);
        for (r, outb) in results.iter().enumerate() {
            assert_eq!(
                &outb[r * len..(r + 1) * len],
                &expect[r][..],
                "{} reduce-scatter rank {r} block",
                imp.name()
            );
        }
    }
}

/// The headline claim as an invariant: SRM is faster than both MPI
/// baselines across representative sizes and topologies.
#[test]
fn srm_outperforms_both_baselines() {
    let opts = HarnessOpts {
        iters: 3,
        ..Default::default()
    };
    for topo in [Topology::sp_16way(2), Topology::sp_16way(4)] {
        for (op, len) in [
            (Op::Bcast, 512usize),
            (Op::Bcast, 64 << 10),
            (Op::Reduce, 4096),
            (Op::Allreduce, 4096),
            (Op::Barrier, 8),
        ] {
            let srm = measure(
                Impl::Srm,
                MachineConfig::ibm_sp_colony(),
                topo,
                op,
                len,
                opts,
            );
            for base in [Impl::IbmMpi, Impl::Mpich] {
                let mpi = measure(base, MachineConfig::ibm_sp_colony(), topo, op, len, opts);
                assert!(
                    srm.per_call < mpi.per_call,
                    "{} {} {}B P={}: SRM {} !< {} {}",
                    op.name(),
                    base.name(),
                    len,
                    topo.nprocs(),
                    srm.per_call,
                    base.name(),
                    mpi.per_call
                );
            }
        }
    }
}

/// Structural claims from the paper, checked in event counts rather
/// than times: SRM does no tag matching, uses fewer data movements
/// intra-node, and takes no interrupts on the small path.
#[test]
fn srm_structural_advantages_show_in_metrics() {
    let topo = Topology::sp_16way(1); // single 16-way node
    let len = 4096usize;
    let opts = HarnessOpts {
        iters: 2,
        ..Default::default()
    };
    let srm = measure(
        Impl::Srm,
        MachineConfig::ibm_sp_colony(),
        topo,
        Op::Bcast,
        len,
        opts,
    );
    let mpi = measure(
        Impl::IbmMpi,
        MachineConfig::ibm_sp_colony(),
        topo,
        Op::Bcast,
        len,
        opts,
    );
    assert_eq!(srm.metrics.matches, 0, "SRM never tag-matches");
    assert!(mpi.metrics.matches > 0, "MPI matches on every message");
    assert!(
        srm.metrics.shm_copies < mpi.metrics.shm_copies,
        "fewer data movements: SRM {} vs MPI {}",
        srm.metrics.shm_copies,
        mpi.metrics.shm_copies
    );
    assert_eq!(srm.metrics.interrupts, 0, "small path runs interrupt-free");
}

/// The embedding claim: with SMP-aware SRM, only masters touch the
/// network, so inter-node message counts are independent of the node
/// width.
#[test]
fn only_masters_touch_network() {
    let opts = HarnessOpts {
        iters: 1,
        ..Default::default()
    };
    let narrow = measure(
        Impl::Srm,
        MachineConfig::ibm_sp_colony(),
        Topology::new(2, 2),
        Op::Bcast,
        1024,
        opts,
    );
    let wide = measure(
        Impl::Srm,
        MachineConfig::ibm_sp_colony(),
        Topology::new(2, 16),
        Op::Bcast,
        1024,
        opts,
    );
    assert_eq!(
        narrow.metrics.net_messages, wide.metrics.net_messages,
        "node width must not change network traffic"
    );
}

/// Modelled times are identical across repeated runs (bit-determinism
/// of the whole stack, end to end).
#[test]
fn end_to_end_determinism() {
    let run = || {
        measure(
            Impl::Srm,
            MachineConfig::ibm_sp_colony(),
            Topology::sp_16way(2),
            Op::Allreduce,
            32 << 10,
            HarnessOpts {
                iters: 2,
                ..Default::default()
            },
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.per_call, b.per_call);
    assert_eq!(a.metrics, b.metrics);
    assert!(a.per_call > SimTime::ZERO);
}

/// The typed convenience API (CollectivesExt) and the bitwise
/// operators work end-to-end through every implementation.
#[test]
fn typed_helpers_and_bitwise_ops() {
    use collops::CollectivesExt;
    let topo = Topology::new(2, 3);
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    let out = Arc::new(Mutex::new(vec![(0.0f64, 0u64); n]));
    for rank in 0..n {
        let comm = world.comm(rank);
        let out = out.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let mut v = vec![rank as f64 + 0.5; 4];
            comm.allreduce_f64(&ctx, &mut v, ReduceOp::Sum);
            let mut bits = vec![1u64 << rank; 2];
            comm.allreduce_u64(&ctx, &mut bits, ReduceOp::Bor);
            let mut b = vec![0.0f64; 3];
            if rank == 1 {
                b = vec![2.25; 3];
            }
            comm.broadcast_f64(&ctx, &mut b, 1);
            assert_eq!(b, vec![2.25; 3]);
            out.lock().unwrap()[rank] = (v[0], bits[0]);
            comm.shutdown(&ctx);
        });
    }
    sim.run().unwrap();
    let expect_sum: f64 = (0..n).map(|r| r as f64 + 0.5).sum();
    let expect_bits: u64 = (0..n).map(|r| 1u64 << r).sum();
    for &(s, b) in out.lock().unwrap().iter() {
        assert_eq!(s, expect_sum);
        assert_eq!(b, expect_bits);
    }
}
