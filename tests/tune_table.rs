//! Tuning-table integration tests: loading a searched table changes
//! *schedules only* (results stay bit-identical to the all-default
//! world), the serialize → load → re-plan round trip is deterministic
//! down to the executed step sequences and plan-cache counts, and the
//! tune-consult path is observable (counters, per-comm breakdown,
//! `tuned:*` trace labels).

use collops::{Collectives, DType, ReduceOp};
use proptest::prelude::*;
use simnet::{MachineConfig, Sim, Topology, Trace};
use srm::{SrmTuning, SrmWorld, TuneEntry, TuneKey, TuneOp, TuneTable};
use std::sync::{Arc, Mutex};

const ALLREDUCE_LEN: usize = 16 * 1024;
const SEG: usize = 4 * 1024;
const BCAST_LEN: usize = 8 * 1024;

/// A table whose entries reroute every op of [`run_program`]: the
/// allreduce off recursive doubling, the alltoall onto a wider
/// narrower-chunk window, the broadcast onto a finer pipeline.
fn demo_table() -> TuneTable {
    let base = TuneEntry::from_tuning(&SrmTuning::default());
    let mut t = TuneTable::new(42, "tune_table test grid", vec![32 * 1024]);
    let wild = |op| TuneKey {
        op,
        class: 0,
        nodes: 0,
        ranks: 0,
    };
    t.insert(
        wild(TuneOp::Allreduce),
        TuneEntry {
            allreduce_rd_max: 0,
            ..base
        },
    );
    t.insert(
        wild(TuneOp::Alltoall),
        TuneEntry {
            pairwise_chunk: 4 * 1024,
            pairwise_window: 4,
            ..base
        },
    );
    t.insert(
        wild(TuneOp::Bcast),
        TuneEntry {
            pipeline_chunk: 2 * 1024,
            ..base
        },
    );
    t
}

/// Run a fixed three-op program (bcast, allreduce, alltoall) on every
/// rank, with step tracing on. Returns (per-rank result buffers,
/// report, per-rank executed step-label sequences, `tuned:*` labels).
#[allow(clippy::type_complexity)]
fn run_program(
    topo: Topology,
    table: Option<Arc<TuneTable>>,
) -> (Vec<Vec<u8>>, simnet::Report, Vec<Vec<String>>, Vec<String>) {
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let trace = Trace::new();
    sim.attach_trace(trace.clone());
    let base = SrmTuning {
        trace_steps: true,
        ..SrmTuning::default()
    };
    let world = match table {
        Some(t) => SrmWorld::with_tuning_table(&mut sim, topo, base, t),
        None => SrmWorld::new(&mut sim, topo, base),
    };
    let out = Arc::new(Mutex::new(vec![Vec::new(); n]));
    for rank in 0..n {
        let comm = world.comm(rank);
        let out = out.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer((2 * n * SEG).max(ALLREDUCE_LEN).max(BCAST_LEN));
            buf.with_mut(|d| {
                for (i, x) in d.iter_mut().enumerate() {
                    *x = (i as u8).wrapping_mul(13).wrapping_add(rank as u8);
                }
            });
            comm.broadcast(&ctx, &buf, BCAST_LEN, 0);
            comm.allreduce(&ctx, &buf, ALLREDUCE_LEN, DType::U64, ReduceOp::Sum);
            comm.alltoall(&ctx, &buf, SEG);
            out.lock().unwrap()[rank] = buf.with(|d| d.to_vec());
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("program completes");
    let results = Arc::try_unwrap(out).unwrap().into_inner().unwrap();
    let steps: Vec<Vec<String>> = (0..n)
        .map(|r| {
            trace
                .for_lp(n + r)
                .into_iter()
                .filter_map(|e| e.label.strip_prefix("step:").map(str::to_string))
                .collect()
        })
        .collect();
    let tuned: Vec<String> = trace
        .with_prefix("tuned:")
        .into_iter()
        .map(|e| e.label.to_string())
        .collect();
    (results, report, steps, tuned)
}

/// Loading a table never changes collective results — only schedules —
/// and the consult path is fully observable.
#[test]
fn tuned_world_results_unchanged_and_observable() {
    let topo = Topology::new(2, 4);
    let table = Arc::new(demo_table());
    let (dres, dreport, dsteps, dtuned) = run_program(topo, None);
    let (tres, treport, tsteps, ttuned) = run_program(topo, Some(table));

    // Results bit-identical, schedules not.
    assert_eq!(dres, tres, "loading the table changed collective results");
    assert_ne!(dsteps, tsteps, "table entries should change schedules");

    // No table: the consult path is never taken.
    assert_eq!(dreport.metrics.tune_table_hits, 0);
    assert_eq!(dreport.metrics.tune_table_misses, 0);
    assert!(dreport.tune_by_comm.is_empty());
    assert!(dtuned.is_empty());

    // With the table: every program op has a wildcard entry, so every
    // plan compile is a tune hit, traced as `tuned:table`.
    assert!(treport.metrics.tune_table_hits > 0);
    let hits: u64 = treport.tune_by_comm.iter().map(|&(_, h, _)| h).sum();
    assert_eq!(hits, treport.metrics.tune_table_hits);
    assert!(ttuned.iter().any(|l| l == "tuned:table"));
    assert!(
        !ttuned.iter().any(|l| l == "tuned:default"),
        "all three ops are covered by wildcard entries"
    );
}

/// serialize → load → re-plan is bit-identical: the parsed table equals
/// the source table, and a run under each executes identical step
/// sequences with identical plan-cache and tune counts.
#[test]
fn serialize_load_replan_bit_identical() {
    let topo = Topology::new(2, 2);
    let built = demo_table();
    let text = built.to_text();
    let parsed = TuneTable::parse(&text).expect("canonical text parses");
    assert_eq!(built, parsed);
    assert_eq!(parsed.to_text(), text, "round trip must be byte-identical");

    let (ares, areport, asteps, _) = run_program(topo, Some(Arc::new(built)));
    let (bres, breport, bsteps, _) = run_program(topo, Some(Arc::new(parsed)));
    assert_eq!(ares, bres);
    assert_eq!(asteps, bsteps, "re-planned schedules must be bit-identical");
    assert_eq!(areport.plan_by_comm, breport.plan_by_comm);
    assert_eq!(breport.tune_by_comm, areport.tune_by_comm);
    assert_eq!(areport.end_time, breport.end_time);
}

/// Strategy for an arbitrary decision entry over the default base
/// tuning — valid by construction (power-of-two knobs kept within the
/// default geometry: `rd_max`/`pairwise_chunk` within the 16 KB reduce
/// chunk, pipeline range within the chosen switch).
fn arb_entry() -> impl Strategy<Value = TuneEntry> {
    let base = SrmTuning::default();
    (
        (1usize..=7, 0usize..=4), // small_large_switch, pipeline_chunk: 2^k KB
        (
            prop_oneof![Just(0usize), Just(2), Just(8), Just(16)], // rd_max KB
            prop_oneof![Just(usize::MAX), Just(1), Just(64 * 1024)], // rs_min
        ),
        (1usize..=4, 1usize..=4), // pairwise chunk 2^k KB, window
        prop_oneof![Just(0usize), Just(8 * 1024), Just(64 * 1024)],
        // pairwise_direct_min: off / always-direct / the default edge
        prop_oneof![Just(usize::MAX), Just(0usize), Just(64 * 1024)],
    )
        .prop_map(move |((sls, pc), (rd, rs), (pwc, pww), idm, pdm)| {
            let sls = (1 << sls) * 1024;
            TuneEntry {
                small_large_switch: sls,
                pipeline_min: base.pipeline_min.min(sls),
                pipeline_max: base.pipeline_max.min(sls),
                pipeline_chunk: ((1 << pc) * 1024usize).min(sls),
                allreduce_rd_max: rd * 1024,
                allreduce_rs_min: rs,
                interrupt_disable_max: idm,
                pairwise_chunk: (1 << pwc) * 1024,
                pairwise_window: pww,
                pairwise_direct_min: pdm,
                ..TuneEntry::from_tuning(&base)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Text round trip is the identity for arbitrary tables.
    #[test]
    fn prop_text_round_trip(
        seed in any::<u64>(),
        edge_kb in 1usize..=64,
        entries in proptest::collection::vec(arb_entry(), 1..4),
    ) {
        let mut t = TuneTable::new(seed, "prop grid", vec![edge_kb * 1024]);
        for (i, e) in entries.into_iter().enumerate() {
            t.insert(
                TuneKey { op: TuneOp::ALL[i % TuneOp::ALL.len()], class: 0, nodes: 0, ranks: 0 },
                e,
            );
        }
        let text = t.to_text();
        let parsed = TuneTable::parse(&text).expect("canonical text parses");
        prop_assert_eq!(&parsed, &t);
        prop_assert_eq!(parsed.to_text(), text);
    }

    /// For arbitrary valid entries and topologies, the tabled world's
    /// results match the default world's bit for bit, and two tabled
    /// runs are identical (schedules, counts, makespan).
    #[test]
    fn prop_tabled_results_match_default(
        nodes in 1usize..=2,
        tasks in 1usize..=3,
        entry in arb_entry(),
        op_mask in 1usize..=7,
    ) {
        let topo = Topology::new(nodes, tasks);
        let mut t = TuneTable::new(1, "prop grid", vec![32 * 1024]);
        for (bit, op) in [TuneOp::Bcast, TuneOp::Allreduce, TuneOp::Alltoall]
            .into_iter()
            .enumerate()
        {
            if op_mask & (1 << bit) != 0 {
                t.insert(TuneKey { op, class: 0, nodes: 0, ranks: 0 }, entry);
            }
        }
        let table = Arc::new(t);
        let (dres, _, _, _) = run_program(topo, None);
        let (ares, areport, asteps, _) = run_program(topo, Some(table.clone()));
        let (bres, breport, bsteps, _) = run_program(topo, Some(table));
        prop_assert_eq!(dres, ares.clone(), "table changed results");
        prop_assert_eq!(ares, bres);
        prop_assert_eq!(asteps, bsteps);
        prop_assert_eq!(areport.plan_by_comm, breport.plan_by_comm);
        prop_assert_eq!(areport.tune_by_comm, breport.tune_by_comm);
        prop_assert_eq!(areport.end_time, breport.end_time);
    }
}
