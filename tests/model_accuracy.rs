//! The analytical model (the paper's §5 future work) must stay within
//! a bounded factor of the full simulation across operations, sizes
//! and cluster shapes — otherwise it is useless as the tuning tool the
//! authors wanted. The `model_vs_sim` binary prints the full grid;
//! this test pins the envelope.

use simnet::{MachineConfig, Topology};
use srm::{SrmModel, SrmTuning};
use srm_cluster::{measure, HarnessOpts, Impl, Op};

const MAX_FACTOR: f64 = 2.5;

#[test]
fn model_within_factor_of_simulation() {
    let machine = MachineConfig::ibm_sp_colony();
    for nodes in [2usize, 4, 8] {
        let topo = Topology::sp_16way(nodes);
        let model = SrmModel::new(machine.clone(), topo, SrmTuning::default());
        for (op, len) in [
            (Op::Bcast, 512usize),
            (Op::Bcast, 64 << 10),
            (Op::Bcast, 512 << 10),
            (Op::Reduce, 512),
            (Op::Reduce, 256 << 10),
            (Op::Allreduce, 512),
            (Op::Allreduce, 256 << 10),
            (Op::Barrier, 8),
        ] {
            let predicted = match op {
                Op::Bcast => model.bcast(len),
                Op::Reduce => model.reduce(len),
                Op::Allreduce => model.allreduce(len),
                Op::Barrier => model.barrier(),
                // The analytical model covers the paper's four measured
                // ops; the segment and pairwise ops are simulation-only
                // for now.
                Op::Gather
                | Op::Scatter
                | Op::Allgather
                | Op::Alltoall
                | Op::Alltoallv
                | Op::ReduceScatter => unreachable!(),
            };
            let sim = measure(
                Impl::Srm,
                machine.clone(),
                topo,
                op,
                len,
                HarnessOpts {
                    iters: 2,
                    ..Default::default()
                },
            )
            .per_call;
            let ratio = sim.as_us() / predicted.as_us();
            assert!(
                (1.0 / MAX_FACTOR..MAX_FACTOR).contains(&ratio),
                "{} {}B on {} nodes: model {predicted} vs sim {sim} (x{ratio:.2})",
                op.name(),
                len,
                nodes
            );
        }
    }
}

#[test]
fn model_predicts_tuning_direction() {
    // The model must agree with the simulator about *which way to tune*:
    // a coarser pipeline chunk for a 24 KB broadcast is better on the
    // Colony preset (see the tuning_study example).
    let machine = MachineConfig::ibm_sp_colony();
    let topo = Topology::sp_16way(4);
    let fine = SrmTuning {
        pipeline_chunk: 1 << 10,
        pipeline_max: 32 << 10,
        ..SrmTuning::default()
    };
    let coarse = SrmTuning {
        pipeline_chunk: 8 << 10,
        pipeline_max: 32 << 10,
        ..SrmTuning::default()
    };
    let m_fine = SrmModel::new(machine.clone(), topo, fine).bcast(24 << 10);
    let m_coarse = SrmModel::new(machine.clone(), topo, coarse).bcast(24 << 10);
    assert!(
        m_coarse < m_fine,
        "model: coarse {m_coarse} !< fine {m_fine}"
    );

    let s = |t: SrmTuning| {
        measure(
            Impl::Srm,
            machine.clone(),
            topo,
            Op::Bcast,
            24 << 10,
            HarnessOpts { iters: 4, srm: t },
        )
        .per_call
    };
    assert!(s(coarse) < s(fine), "simulation disagrees with the model");
}
