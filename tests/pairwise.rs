//! The pairwise RMA exchange subsystem observed through the simulator
//! metrics: puts route through the landing rings, the credit window
//! genuinely throttles (stalls appear when it is tight and disappear
//! when it is ample), and the Rabenseifner allreduce composition built
//! on reduce-scatter matches the pipeline path bit for bit.

use collops::{reference_reduce, Collectives, DType, ReduceOp};
use simnet::{MachineConfig, MetricsSnapshot, Sim, Topology};
use srm::{SrmTuning, SrmWorld};
use std::sync::{Arc, Mutex};

/// Run `body` on every rank; return final buffers and the run metrics.
fn run_with_metrics(
    topo: Topology,
    tuning: SrmTuning,
    cap: usize,
    init: impl Fn(usize) -> Vec<u8> + Send + Sync + 'static,
    body: impl Fn(&simnet::Ctx, &srm::SrmComm, &shmem::ShmBuffer) + Send + Sync + 'static,
) -> (Vec<Vec<u8>>, MetricsSnapshot) {
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, tuning);
    let out = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let init = Arc::new(init);
    let body = Arc::new(body);
    for rank in 0..n {
        let comm = world.comm(rank);
        let out = out.clone();
        let init = init.clone();
        let body = body.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(cap.max(8));
            let image = init(rank);
            buf.with_mut(|d| d[..image.len()].copy_from_slice(&image));
            body(&ctx, &comm, &buf);
            out.lock().unwrap()[rank] = buf.with(|d| d.to_vec());
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("simulation completes");
    let results = Arc::try_unwrap(out).unwrap().into_inner().unwrap();
    (results, report.metrics)
}

fn send_half(rank: usize, n: usize, len: usize) -> Vec<u8> {
    (0..n * len)
        .map(|i| (rank * 97 + i * 5 + 11) as u8)
        .collect()
}

/// Inter-node alltoall traffic moves exclusively through the landing
/// rings: every wire piece is counted by `pairwise_puts`.
#[test]
fn alltoall_routes_through_pairwise_rings() {
    let topo = Topology::new(3, 2);
    let n = topo.nprocs();
    let len = 4096usize;
    let (_, m) = run_with_metrics(
        topo,
        SrmTuning::default(),
        2 * n * len,
        move |rank| send_half(rank, n, len),
        move |ctx, comm, buf| comm.alltoall(ctx, buf, len),
    );
    assert!(m.pairwise_puts > 0, "alltoall must put through the rings");
    // 3 nodes x 2 ordered peers x (2 tasks x 4096 B / 16 KB chunk -> 1
    // piece per source slot x 2 slots) = 12 data puts; credit-return
    // puts are zero-byte RMA and counted separately.
    assert_eq!(m.pairwise_puts, 12);
}

/// At the default 64 KB threshold the planner takes the direct route:
/// exactly one address-exchanged put per ordered remote pair, nothing
/// through the rings, and no credit traffic at all — with results
/// bit-identical to a forced-staged run of the same call.
#[test]
fn direct_route_exact_put_count_and_staged_parity() {
    let topo = Topology::new(3, 2);
    let n = topo.nprocs();
    let len = 64 * 1024usize;
    let run = move |t: SrmTuning| {
        run_with_metrics(
            topo,
            t,
            2 * n * len,
            move |rank| send_half(rank, n, len),
            move |ctx, comm, buf| comm.alltoall(ctx, buf, len),
        )
    };
    let (res_direct, m) = run(SrmTuning::default());
    // 6 ranks x 4 remote peers = 24 ordered pairs, one unchunked put
    // each; the 64 KB segment would have been 4 ring pieces per pair.
    assert_eq!(m.pairwise_direct_puts, 24);
    assert_eq!(m.pairwise_puts, 0, "direct route must bypass the rings");
    assert_eq!(m.credit_stalls, 0, "no ring credits, no credit stalls");
    let (res_staged, m_staged) = run(SrmTuning {
        pairwise_direct_min: usize::MAX,
        ..SrmTuning::default()
    });
    assert_eq!(m_staged.pairwise_direct_puts, 0);
    assert!(m_staged.pairwise_puts > 0);
    assert_eq!(res_direct, res_staged, "routes must agree bit for bit");
}

/// The credit window is real back-pressure: a window of 1 with many
/// pieces per stream stalls the sender, an ample window does not, and
/// the results are identical either way.
#[test]
fn credit_window_throttles_and_preserves_results() {
    let topo = Topology::new(2, 2);
    let n = topo.nprocs();
    let len = 16 * 1024usize;
    let tight = SrmTuning {
        pairwise_chunk: 512, // 64 pieces per 2-task block
        pairwise_window: 1,  // every piece waits for the previous drain
        ..SrmTuning::default()
    };
    let ample = SrmTuning {
        pairwise_chunk: 512,
        pairwise_window: 64,
        ..SrmTuning::default()
    };
    let run = move |t: SrmTuning| {
        run_with_metrics(
            topo,
            t,
            2 * n * len,
            move |rank| send_half(rank, n, len),
            move |ctx, comm, buf| comm.alltoall(ctx, buf, len),
        )
    };
    let (res_tight, m_tight) = run(tight);
    let (res_ample, m_ample) = run(ample);
    assert!(
        m_tight.credit_stalls > 0,
        "window=1 with 64-piece streams must stall on credits"
    );
    assert_eq!(
        m_ample.credit_stalls, 0,
        "a window covering the whole stream must never stall"
    );
    assert_eq!(res_tight, res_ample, "throttling must not change data");
    assert_eq!(m_tight.pairwise_puts, m_ample.pairwise_puts);
}

/// Above `allreduce_rs_min` the allreduce switches to the Rabenseifner
/// composition (reduce-scatter + allgather over the pairwise rings) and
/// must produce exactly the pipeline path's result.
#[test]
fn rabenseifner_allreduce_matches_pipeline() {
    let topo = Topology::new(2, 3);
    let n = topo.nprocs();
    let elems = 6 * 1024usize; // len = 288 KB, divisible by nprocs=6
    let len = elems * 8;
    assert_eq!(len % n, 0);
    let contribs: Vec<Vec<u8>> = (0..n)
        .map(|r| {
            collops::to_bytes_u64(
                &(0..elems)
                    .map(|i| (r * 6007 + i * 13 + 1) as u64)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let expect = reference_reduce(DType::U64, ReduceOp::Sum, &contribs);
    let run = |tuning: SrmTuning| {
        let c = contribs.clone();
        run_with_metrics(
            topo,
            tuning,
            len,
            move |rank| c[rank].clone(),
            move |ctx, comm, buf| comm.allreduce(ctx, buf, len, DType::U64, ReduceOp::Sum),
        )
    };
    let (pipeline, m_pipe) = run(SrmTuning::default());
    let (rs, m_rs) = run(SrmTuning {
        allreduce_rs_min: 1,
        ..SrmTuning::default()
    });
    assert_eq!(m_pipe.pairwise_puts, 0, "pipeline path must not use rings");
    assert!(
        m_rs.pairwise_puts > 0,
        "rs+allgather path must use the rings"
    );
    for (rank, r) in rs.iter().enumerate() {
        assert_eq!(r, &pipeline[rank], "paths diverge on rank {rank}");
        assert_eq!(&r[..len], &expect[..], "wrong reduction on rank {rank}");
    }
}
