//! Correctness of the nonblocking (`i`-prefixed) collectives across
//! every implementation: SRM's interleaving executor and the eager MPI
//! baselines must produce exactly the blocking results, for every op,
//! on shared-root and segment semantics alike.
//!
//! Each scenario issues the op nonblocking, interleaves simulated
//! compute with `test` polls (exercising the dispatcher-poll progress
//! path), then waits — so the schedules genuinely run through the
//! parked/resumed machinery rather than completing at issue.

use collops::{reference_reduce, DType, NonblockingCollectives, ReduceOp};
use mpi_coll::MpiColl;
use msg::{MsgWorld, Vendor};
use simnet::{Ctx, MachineConfig, Perturb, Sim, SimTime, Topology};
use srm::{SrmTuning, SrmWorld};
use std::sync::{Arc, Mutex};

#[derive(Clone, Copy, Debug, PartialEq)]
enum IOp {
    Bcast,
    Reduce,
    Allreduce,
    Barrier,
    Gather,
    Scatter,
    Allgather,
    Alltoall,
    Alltoallv,
    ReduceScatter,
}

const ALL_OPS: [IOp; 10] = [
    IOp::Bcast,
    IOp::Reduce,
    IOp::Allreduce,
    IOp::Barrier,
    IOp::Gather,
    IOp::Scatter,
    IOp::Allgather,
    IOp::Alltoall,
    IOp::Alltoallv,
    IOp::ReduceScatter,
];

/// Buffer capacity for `op` at per-segment parameter `seg_len`.
fn total_for(op: IOp, n: usize, seg_len: usize) -> usize {
    match op {
        IOp::Gather | IOp::Scatter | IOp::Allgather | IOp::ReduceScatter => (n * seg_len).max(8),
        IOp::Alltoall | IOp::Alltoallv => (2 * n * seg_len).max(8),
        _ => seg_len.max(8),
    }
}

#[derive(Clone, Copy, Debug)]
enum Which {
    Srm,
    IbmMpi,
    Mpich,
}

/// Issue `op` nonblocking, poll `test` around compute slices, wait.
fn drive<C: NonblockingCollectives>(
    ctx: &Ctx,
    coll: &C,
    buf: &shmem::ShmBuffer,
    n: usize,
    len: usize,
    op: IOp,
    root: usize,
) {
    let req = match op {
        IOp::Bcast => coll.ibroadcast(ctx, buf, len, root),
        IOp::Reduce => coll.ireduce(ctx, buf, len, DType::U64, ReduceOp::Sum, root),
        IOp::Allreduce => coll.iallreduce(ctx, buf, len, DType::U64, ReduceOp::Sum),
        IOp::Barrier => coll.ibarrier(ctx),
        IOp::Gather => coll.igather(ctx, buf, len, root),
        IOp::Scatter => coll.iscatter(ctx, buf, len, root),
        IOp::Allgather => coll.iallgather(ctx, buf, len),
        IOp::Alltoall => coll.ialltoall(ctx, buf, len),
        IOp::Alltoallv => coll.ialltoallv(ctx, buf, len, &srm_cluster::ragged_counts(n, len)),
        IOp::ReduceScatter => coll.ireduce_scatter(ctx, buf, len, DType::U64, ReduceOp::Sum),
    };
    // Overlapped compute: a few slices with completion polls between.
    let mut done = false;
    for _ in 0..4 {
        ctx.advance(SimTime::from_us(5));
        if coll.test(ctx, &req) {
            done = true;
            break;
        }
    }
    if done {
        // `test` success is sticky: the wait must return immediately.
        assert!(coll.test(ctx, &req));
    }
    coll.wait(ctx, req);
}

/// Per-rank initial payload: distinct bytes per (rank, index) so any
/// misrouted segment is visible.
fn init_bytes(rank: usize, total: usize) -> Vec<u8> {
    (0..total)
        .map(|i| (rank as u64 * 131 + i as u64 * 7 + 3) as u8)
        .collect()
}

/// Run `op` under `which` on every rank; return per-rank final buffers.
/// With `perturb`, the run executes under the seeded perturbation layer
/// (jitter/stalls/straggler) — results must not change.
fn run_nb(
    which: Which,
    topo: Topology,
    seg_len: usize,
    op: IOp,
    root: usize,
    perturb: Option<Perturb>,
) -> Vec<Vec<u8>> {
    let n = topo.nprocs();
    let total = total_for(op, n, seg_len);
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    if let Some(p) = perturb {
        sim.set_perturb(p);
    }
    enum World {
        Srm(SrmWorld),
        Mpi(MsgWorld),
    }
    let world = match which {
        Which::Srm => World::Srm(SrmWorld::new(&mut sim, topo, SrmTuning::default())),
        Which::IbmMpi => World::Mpi(MsgWorld::new(&mut sim, topo, Vendor::IbmMpi)),
        Which::Mpich => World::Mpi(MsgWorld::new(&mut sim, topo, Vendor::Mpich)),
    };
    let out = Arc::new(Mutex::new(vec![Vec::new(); n]));
    for rank in 0..n {
        let out = out.clone();
        match &world {
            World::Srm(w) => {
                let comm = w.comm(rank);
                sim.spawn(format!("rank{rank}"), move |ctx| {
                    let buf = comm.alloc_buffer(total);
                    buf.with_mut(|d| d.copy_from_slice(&init_bytes(rank, total)));
                    drive(&ctx, &comm, &buf, n, seg_len, op, root);
                    out.lock().unwrap()[rank] = buf.with(|d| d.to_vec());
                    comm.shutdown(&ctx);
                });
            }
            World::Mpi(w) => {
                let coll = MpiColl::new(w.endpoint(rank));
                sim.spawn(format!("rank{rank}"), move |ctx| {
                    let buf = shmem::ShmBuffer::new(total);
                    buf.with_mut(|d| d.copy_from_slice(&init_bytes(rank, total)));
                    drive(&ctx, &coll, &buf, n, seg_len, op, root);
                    out.lock().unwrap()[rank] = buf.with(|d| d.to_vec());
                });
            }
        }
    }
    sim.run().expect("simulation completes");
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// The regions of each rank's buffer the op's contract specifies, and
/// their expected contents, computed from the sequential reference.
fn check(op: IOp, topo: Topology, seg_len: usize, root: usize, got: &[Vec<u8>], tag: &str) {
    let n = topo.nprocs();
    let total = total_for(op, n, seg_len);
    let inits: Vec<Vec<u8>> = (0..n).map(|r| init_bytes(r, total)).collect();
    match op {
        IOp::Barrier => {}
        IOp::Bcast => {
            for (r, g) in got.iter().enumerate() {
                assert_eq!(
                    g[..seg_len],
                    inits[root][..seg_len],
                    "{tag}: rank {r} broadcast payload"
                );
            }
        }
        IOp::Reduce | IOp::Allreduce => {
            // Round the payload down to whole u64 lanes for the
            // reference (the drivers only use multiple-of-8 lengths).
            let contribs: Vec<Vec<u8>> = inits.iter().map(|i| i[..seg_len].to_vec()).collect();
            let expect = reference_reduce(DType::U64, ReduceOp::Sum, &contribs);
            let ranks: Vec<usize> = if op == IOp::Reduce {
                vec![root]
            } else {
                (0..n).collect()
            };
            for r in ranks {
                assert_eq!(got[r][..seg_len], expect[..], "{tag}: rank {r} reduction");
            }
        }
        IOp::Gather => {
            for (src, init) in inits.iter().enumerate() {
                assert_eq!(
                    got[root][src * seg_len..(src + 1) * seg_len],
                    init[src * seg_len..(src + 1) * seg_len],
                    "{tag}: root segment from rank {src}"
                );
            }
        }
        IOp::Scatter => {
            for (r, g) in got.iter().enumerate() {
                assert_eq!(
                    g[r * seg_len..(r + 1) * seg_len],
                    inits[root][r * seg_len..(r + 1) * seg_len],
                    "{tag}: rank {r} scattered segment"
                );
            }
        }
        IOp::Allgather => {
            for (r, g) in got.iter().enumerate() {
                for (src, init) in inits.iter().enumerate() {
                    assert_eq!(
                        g[src * seg_len..(src + 1) * seg_len],
                        init[src * seg_len..(src + 1) * seg_len],
                        "{tag}: rank {r} segment from rank {src}"
                    );
                }
            }
        }
        IOp::Alltoall => {
            let rbase = n * seg_len;
            for (r, g) in got.iter().enumerate() {
                for (src, init) in inits.iter().enumerate() {
                    assert_eq!(
                        g[rbase + src * seg_len..rbase + (src + 1) * seg_len],
                        init[r * seg_len..(r + 1) * seg_len],
                        "{tag}: rank {r} received segment from rank {src}"
                    );
                }
            }
        }
        IOp::Alltoallv => {
            let rbase = n * seg_len;
            let counts = srm_cluster::ragged_counts(n, seg_len);
            for (r, g) in got.iter().enumerate() {
                for (src, init) in inits.iter().enumerate() {
                    let c = counts[src * n + r];
                    assert_eq!(
                        g[rbase + src * seg_len..rbase + src * seg_len + c],
                        init[r * seg_len..r * seg_len + c],
                        "{tag}: rank {r} live prefix from rank {src}"
                    );
                }
            }
        }
        IOp::ReduceScatter => {
            let expect = reference_reduce(DType::U64, ReduceOp::Sum, &inits);
            for (r, g) in got.iter().enumerate() {
                assert_eq!(
                    g[r * seg_len..(r + 1) * seg_len],
                    expect[r * seg_len..(r + 1) * seg_len],
                    "{tag}: rank {r} reduced block"
                );
            }
        }
    }
}

/// Every i-op, every implementation, several shapes and sizes: results
/// must match the sequential reference (and therefore each other).
#[test]
fn iops_match_reference_across_impls() {
    for (nodes, tpn) in [(1, 4), (2, 2), (2, 3)] {
        let topo = Topology::new(nodes, tpn);
        let n = topo.nprocs();
        for op in ALL_OPS {
            let lens: &[usize] = match op {
                IOp::Barrier => &[8],
                IOp::Gather
                | IOp::Scatter
                | IOp::Allgather
                | IOp::Alltoall
                | IOp::Alltoallv
                | IOp::ReduceScatter => &[8, 4096],
                _ => &[8, 40_000],
            };
            for &seg_len in lens {
                let root = (n - 1) % n;
                for which in [Which::Srm, Which::IbmMpi, Which::Mpich] {
                    let got = run_nb(which, topo, seg_len, op, root, None);
                    let tag = format!("{which:?} {op:?} {nodes}x{tpn} len={seg_len}");
                    check(op, topo, seg_len, root, &got, &tag);
                }
            }
        }
    }
}

/// Perturbed replay of the SRM scenarios: the same i-op results under
/// delivery jitter, bounded reordering, compute stalls and a straggler.
/// Seed counts stay small here (tier-1); the big sweeps live in the
/// `explore --seeds` harness and the CI `stress-smoke` job.
#[test]
fn srm_iops_survive_perturbation() {
    let topo = Topology::new(2, 3);
    let n = topo.nprocs();
    for op in ALL_OPS {
        let seg_len = if op == IOp::Barrier { 8 } else { 1024 };
        for seed in 0..3u64 {
            let perturb =
                Perturb::standard(seed).with_straggler(seed as usize % n, SimTime::from_us(40));
            let root = (seed as usize + 1) % n;
            let got = run_nb(Which::Srm, topo, seg_len, op, root, Some(perturb));
            let tag = format!("Srm {op:?} perturbed seed={seed} len={seg_len}");
            check(op, topo, seg_len, root, &got, &tag);
        }
    }
}

/// SRM large-message nonblocking broadcast (address-exchange protocol)
/// delivers correct data with a second schedule outstanding.
#[test]
fn srm_large_ibcast_with_outstanding_reduce() {
    let topo = Topology::new(2, 2);
    let n = topo.nprocs();
    let len = 100_000; // above the 64 KB small/large switch
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    for rank in 0..n {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let big = comm.alloc_buffer(len);
            let small = comm.alloc_buffer(8);
            big.with_mut(|d| d.copy_from_slice(&init_bytes(rank, len)));
            small.with_mut(|d| d.copy_from_slice(&(rank as u64 + 1).to_le_bytes()));
            let r1 = comm.ibroadcast(&ctx, &big, len, 0);
            let r2 = comm.ireduce(&ctx, &small, 8, DType::U64, ReduceOp::Sum, 0);
            ctx.advance(SimTime::from_us(20));
            comm.wait(&ctx, r1);
            comm.wait(&ctx, r2);
            big.with(|d| assert_eq!(d[..], init_bytes(0, len)[..], "rank {rank} payload"));
            if rank == 0 {
                let got = small.with(|d| u64::from_le_bytes(d[..8].try_into().unwrap()));
                assert_eq!(got, (1..=n as u64).sum::<u64>());
            }
            comm.shutdown(&ctx);
        });
    }
    sim.run().expect("no deadlock");
}
