//! Property-based tests: for arbitrary topologies, payload sizes,
//! roots, operators and data, the collectives must match the
//! sequential reference, and runs must be deterministic.

use collops::{reference_reduce, Collectives, DType, ReduceOp};
use proptest::prelude::*;
use simnet::{MachineConfig, Sim, Topology};
use srm::{SrmTuning, SrmWorld, TreeKind};
use std::sync::{Arc, Mutex};

#[derive(Clone, Copy, Debug)]
enum WhichOp {
    Bcast,
    Reduce,
    Allreduce,
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    (1usize..=4, 1usize..=6).prop_map(|(n, p)| Topology::new(n, p))
}

fn arb_op() -> impl Strategy<Value = (WhichOp, ReduceOp)> {
    (
        prop_oneof![
            Just(WhichOp::Bcast),
            Just(WhichOp::Reduce),
            Just(WhichOp::Allreduce)
        ],
        prop_oneof![
            Just(ReduceOp::Sum),
            Just(ReduceOp::Min),
            Just(ReduceOp::Max),
        ],
    )
}

fn arb_tree() -> impl Strategy<Value = TreeKind> {
    prop_oneof![
        Just(TreeKind::Binomial),
        Just(TreeKind::Binary),
        Just(TreeKind::Fibonacci)
    ]
}

/// Run the collective on every rank; return per-rank final payloads.
fn run_srm(
    topo: Topology,
    tree: TreeKind,
    op: WhichOp,
    rop: ReduceOp,
    root: usize,
    contribs: Vec<Vec<u64>>,
) -> Vec<Vec<u8>> {
    let len = contribs[0].len() * 8;
    let tuning = SrmTuning {
        tree,
        ..SrmTuning::default()
    };
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, tuning);
    let out = Arc::new(Mutex::new(vec![Vec::new(); topo.nprocs()]));
    let contribs = Arc::new(contribs);
    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        let out = out.clone();
        let contribs = contribs.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(len.max(1));
            buf.with_mut(|d| d[..len].copy_from_slice(&collops::to_bytes_u64(&contribs[rank])));
            match op {
                WhichOp::Bcast => comm.broadcast(&ctx, &buf, len, root),
                WhichOp::Reduce => comm.reduce(&ctx, &buf, len, DType::U64, rop, root),
                WhichOp::Allreduce => comm.allreduce(&ctx, &buf, len, DType::U64, rop),
            }
            out.lock().unwrap()[rank] = buf.with(|d| d[..len].to_vec());
            comm.shutdown(&ctx);
        });
    }
    sim.run().expect("simulation completes");
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Every collective on every shape matches the sequential reference.
    #[test]
    fn collectives_match_reference(
        topo in arb_topology(),
        tree in arb_tree(),
        (op, rop) in arb_op(),
        root_seed in 0usize..64,
        elems in 1usize..48,
        seed in any::<u64>(),
    ) {
        let n = topo.nprocs();
        let root = root_seed % n;
        // Deterministic pseudo-random contributions from the seed.
        let contribs: Vec<Vec<u64>> = (0..n)
            .map(|r| {
                (0..elems)
                    .map(|i| {
                        seed.wrapping_mul(6364136223846793005)
                            .wrapping_add((r * 1009 + i) as u64)
                            >> 17
                    })
                    .collect()
            })
            .collect();
        let results = run_srm(topo, tree, op, rop, root, contribs.clone());

        let bytes: Vec<Vec<u8>> = contribs.iter().map(|c| collops::to_bytes_u64(c)).collect();
        match op {
            WhichOp::Bcast => {
                for (rank, r) in results.iter().enumerate() {
                    prop_assert_eq!(r, &bytes[root], "bcast rank {}", rank);
                }
            }
            WhichOp::Reduce => {
                let expect = reference_reduce(DType::U64, rop, &bytes);
                prop_assert_eq!(&results[root], &expect, "reduce at root {}", root);
            }
            WhichOp::Allreduce => {
                let expect = reference_reduce(DType::U64, rop, &bytes);
                for (rank, r) in results.iter().enumerate() {
                    prop_assert_eq!(r, &expect, "allreduce rank {}", rank);
                }
            }
        }
    }

    /// Identical inputs give identical outputs and identical traces
    /// (determinism as a property, not a spot check).
    #[test]
    fn runs_are_reproducible(
        topo in arb_topology(),
        elems in 1usize..32,
        seed in any::<u64>(),
    ) {
        let n = topo.nprocs();
        let contribs: Vec<Vec<u64>> = (0..n)
            .map(|r| (0..elems).map(|i| seed ^ ((r * 31 + i) as u64)).collect())
            .collect();
        let a = run_srm(topo, TreeKind::Binomial, WhichOp::Allreduce, ReduceOp::Max, 0, contribs.clone());
        let b = run_srm(topo, TreeKind::Binomial, WhichOp::Allreduce, ReduceOp::Max, 0, contribs);
        prop_assert_eq!(a, b);
    }
}

/// Tree-structure properties over the full parameter space (cheap, so
/// more cases).
proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        .. ProptestConfig::default()
    })]

    #[test]
    fn trees_span_and_are_acyclic(size in 1usize..200, kind_pick in 0usize..3) {
        let kind = [TreeKind::Binomial, TreeKind::Binary, TreeKind::Fibonacci][kind_pick];
        let mut seen = vec![false; size];
        seen[0] = true;
        let mut count = 1;
        for v in 0..size {
            for c in srm::embed::children(kind, v, size) {
                prop_assert!(c < size);
                prop_assert!(!seen[c], "{:?}: vertex {} reached twice", kind, c);
                prop_assert_eq!(srm::embed::parent(kind, c, size), Some(v));
                seen[c] = true;
                count += 1;
            }
        }
        prop_assert_eq!(count, size, "{:?}: not spanning", kind);
    }

    #[test]
    fn embedding_covers_every_rank(nodes in 1usize..12, tpn in 1usize..12, root_seed in 0usize..144) {
        let topo = Topology::new(nodes, tpn);
        let root = root_seed % topo.nprocs();
        let e = srm::Embedding::new(topo, root, TreeKind::Binomial);
        // Every node is reachable from the root's node.
        let mut seen_nodes = vec![false; nodes];
        seen_nodes[e.root_node()] = true;
        let mut stack = vec![e.root_node()];
        while let Some(n) = stack.pop() {
            for c in e.node_children(n) {
                prop_assert!(!seen_nodes[c]);
                seen_nodes[c] = true;
                stack.push(c);
            }
        }
        prop_assert!(seen_nodes.iter().all(|&b| b));
        // Every rank has a path to its node master.
        for rank in 0..topo.nprocs() {
            let mut cur = rank;
            let mut hops = 0;
            while let Some(p) = e.smp_parent(cur) {
                cur = p;
                hops += 1;
                prop_assert!(hops <= tpn, "cycle in smp tree");
            }
            prop_assert_eq!(cur, topo.master_of(topo.node_of(rank)));
        }
    }
}
