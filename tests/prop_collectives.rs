//! Property-based tests: for arbitrary topologies, payload sizes,
//! roots, operators and data, the collectives must match the
//! sequential reference, and runs must be deterministic.

use collops::{reference_reduce, Collectives, DType, ReduceOp};
use mpi_coll::MpiColl;
use msg::{MsgWorld, Vendor};
use proptest::prelude::*;
use simnet::{MachineConfig, Sim, Topology};
use srm::{SrmTuning, SrmWorld, TreeKind};
use std::sync::{Arc, Mutex};

#[derive(Clone, Copy, Debug)]
enum WhichOp {
    Bcast,
    Reduce,
    Allreduce,
}

/// The segmented (vector) collectives: `len` is per-rank segment size
/// and buffers hold `nprocs` segments.
#[derive(Clone, Copy, Debug)]
enum SegOp {
    Gather,
    Scatter,
    Allgather,
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    (1usize..=4, 1usize..=6).prop_map(|(n, p)| Topology::new(n, p))
}

fn arb_op() -> impl Strategy<Value = (WhichOp, ReduceOp)> {
    (
        prop_oneof![
            Just(WhichOp::Bcast),
            Just(WhichOp::Reduce),
            Just(WhichOp::Allreduce)
        ],
        prop_oneof![
            Just(ReduceOp::Sum),
            Just(ReduceOp::Min),
            Just(ReduceOp::Max),
        ],
    )
}

fn arb_tree() -> impl Strategy<Value = TreeKind> {
    prop_oneof![
        Just(TreeKind::Binomial),
        Just(TreeKind::Binary),
        Just(TreeKind::Fibonacci)
    ]
}

/// Run the collective on every rank; return per-rank final payloads.
fn run_srm(
    topo: Topology,
    tree: TreeKind,
    op: WhichOp,
    rop: ReduceOp,
    root: usize,
    contribs: Vec<Vec<u64>>,
) -> Vec<Vec<u8>> {
    let len = contribs[0].len() * 8;
    let tuning = SrmTuning {
        tree,
        ..SrmTuning::default()
    };
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, tuning);
    let out = Arc::new(Mutex::new(vec![Vec::new(); topo.nprocs()]));
    let contribs = Arc::new(contribs);
    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        let out = out.clone();
        let contribs = contribs.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(len.max(1));
            buf.with_mut(|d| d[..len].copy_from_slice(&collops::to_bytes_u64(&contribs[rank])));
            match op {
                WhichOp::Bcast => comm.broadcast(&ctx, &buf, len, root),
                WhichOp::Reduce => comm.reduce(&ctx, &buf, len, DType::U64, rop, root),
                WhichOp::Allreduce => comm.allreduce(&ctx, &buf, len, DType::U64, rop),
            }
            out.lock().unwrap()[rank] = buf.with(|d| d[..len].to_vec());
            comm.shutdown(&ctx);
        });
    }
    sim.run().expect("simulation completes");
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// Run one segmented collective on every SRM rank. `init[rank]` is the
/// rank's full initial buffer (`nprocs * len` bytes); returns the final
/// full buffers.
fn run_seg_srm(
    topo: Topology,
    op: SegOp,
    len: usize,
    root: usize,
    init: Vec<Vec<u8>>,
) -> Vec<Vec<u8>> {
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    let out = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let init = Arc::new(init);
    for rank in 0..n {
        let comm = world.comm(rank);
        let out = out.clone();
        let init = init.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer((n * len).max(1));
            buf.with_mut(|d| d[..n * len].copy_from_slice(&init[rank]));
            match op {
                SegOp::Gather => comm.gather(&ctx, &buf, len, root),
                SegOp::Scatter => comm.scatter(&ctx, &buf, len, root),
                SegOp::Allgather => comm.allgather(&ctx, &buf, len),
            }
            out.lock().unwrap()[rank] = buf.with(|d| d[..n * len].to_vec());
            comm.shutdown(&ctx);
        });
    }
    sim.run().expect("simulation completes");
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// Same as [`run_seg_srm`] but through a point-to-point MPI baseline.
fn run_seg_mpi(
    topo: Topology,
    vendor: Vendor,
    op: SegOp,
    len: usize,
    root: usize,
    init: Vec<Vec<u8>>,
) -> Vec<Vec<u8>> {
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = MsgWorld::new(&mut sim, topo, vendor);
    let out = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let init = Arc::new(init);
    for rank in 0..n {
        let coll = MpiColl::new(world.endpoint(rank));
        let out = out.clone();
        let init = init.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = shmem::ShmBuffer::new((n * len).max(1));
            buf.with_mut(|d| d[..n * len].copy_from_slice(&init[rank]));
            match op {
                SegOp::Gather => coll.gather(&ctx, &buf, len, root),
                SegOp::Scatter => coll.scatter(&ctx, &buf, len, root),
                SegOp::Allgather => coll.allgather(&ctx, &buf, len),
            }
            out.lock().unwrap()[rank] = buf.with(|d| d[..n * len].to_vec());
        });
    }
    sim.run().expect("simulation completes");
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// Deterministic pseudo-random full buffers, one per rank.
fn seg_init(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..n)
        .map(|r| {
            (0..n * len)
                .map(|i| {
                    (seed
                        .wrapping_mul(0x9e3779b97f4a7c15)
                        .wrapping_add((r * 65537 + i) as u64)
                        >> 11) as u8
                })
                .collect()
        })
        .collect()
}

/// The byte range of rank `r`'s segment.
fn seg(r: usize, len: usize) -> std::ops::Range<usize> {
    r * len..(r + 1) * len
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Every collective on every shape matches the sequential reference.
    #[test]
    fn collectives_match_reference(
        topo in arb_topology(),
        tree in arb_tree(),
        (op, rop) in arb_op(),
        root_seed in 0usize..64,
        elems in 1usize..48,
        seed in any::<u64>(),
    ) {
        let n = topo.nprocs();
        let root = root_seed % n;
        // Deterministic pseudo-random contributions from the seed.
        let contribs: Vec<Vec<u64>> = (0..n)
            .map(|r| {
                (0..elems)
                    .map(|i| {
                        seed.wrapping_mul(6364136223846793005)
                            .wrapping_add((r * 1009 + i) as u64)
                            >> 17
                    })
                    .collect()
            })
            .collect();
        let results = run_srm(topo, tree, op, rop, root, contribs.clone());

        let bytes: Vec<Vec<u8>> = contribs.iter().map(|c| collops::to_bytes_u64(c)).collect();
        match op {
            WhichOp::Bcast => {
                for (rank, r) in results.iter().enumerate() {
                    prop_assert_eq!(r, &bytes[root], "bcast rank {}", rank);
                }
            }
            WhichOp::Reduce => {
                let expect = reference_reduce(DType::U64, rop, &bytes);
                prop_assert_eq!(&results[root], &expect, "reduce at root {}", root);
            }
            WhichOp::Allreduce => {
                let expect = reference_reduce(DType::U64, rop, &bytes);
                for (rank, r) in results.iter().enumerate() {
                    prop_assert_eq!(r, &expect, "allreduce rank {}", rank);
                }
            }
        }
    }

    /// Identical inputs give identical outputs and identical traces
    /// (determinism as a property, not a spot check).
    #[test]
    fn runs_are_reproducible(
        topo in arb_topology(),
        elems in 1usize..32,
        seed in any::<u64>(),
    ) {
        let n = topo.nprocs();
        let contribs: Vec<Vec<u64>> = (0..n)
            .map(|r| (0..elems).map(|i| seed ^ ((r * 31 + i) as u64)).collect())
            .collect();
        let a = run_srm(topo, TreeKind::Binomial, WhichOp::Allreduce, ReduceOp::Max, 0, contribs.clone());
        let b = run_srm(topo, TreeKind::Binomial, WhichOp::Allreduce, ReduceOp::Max, 0, contribs);
        prop_assert_eq!(a, b);
    }

    /// Gather delivers every rank's segment to the root; scatter
    /// delivers the root's segments to their owners; allgather delivers
    /// everything everywhere. Topologies include non-power-of-two rank
    /// counts and arbitrary (non-zero) roots.
    #[test]
    fn segmented_collectives_semantics(
        topo in arb_topology(),
        op_pick in 0usize..3,
        root_seed in 0usize..64,
        len in 1usize..3000,
        seed in any::<u64>(),
    ) {
        let n = topo.nprocs();
        let op = [SegOp::Gather, SegOp::Scatter, SegOp::Allgather][op_pick];
        let root = root_seed % n;
        let init = seg_init(n, len, seed);
        let results = run_seg_srm(topo, op, len, root, init.clone());
        match op {
            SegOp::Gather => {
                for r in 0..n {
                    prop_assert_eq!(
                        &results[root][seg(r, len)],
                        &init[r][seg(r, len)],
                        "gather root {} missing rank {}'s segment", root, r
                    );
                }
            }
            SegOp::Scatter => {
                for r in 0..n {
                    prop_assert_eq!(
                        &results[r][seg(r, len)],
                        &init[root][seg(r, len)],
                        "scatter rank {} from root {}", r, root
                    );
                }
            }
            SegOp::Allgather => {
                for (rank, res) in results.iter().enumerate() {
                    for r in 0..n {
                        prop_assert_eq!(
                            &res[seg(r, len)],
                            &init[r][seg(r, len)],
                            "allgather rank {} segment {}", rank, r
                        );
                    }
                }
            }
        }
    }

    /// SRM and both point-to-point vendor baselines agree on the
    /// defined regions of every segmented collective.
    #[test]
    fn segmented_collectives_agree_with_baselines(
        topo in arb_topology(),
        op_pick in 0usize..3,
        root_seed in 0usize..64,
        len in 1usize..600,
        seed in any::<u64>(),
    ) {
        let n = topo.nprocs();
        let op = [SegOp::Gather, SegOp::Scatter, SegOp::Allgather][op_pick];
        let root = root_seed % n;
        let init = seg_init(n, len, seed);
        let srm = run_seg_srm(topo, op, len, root, init.clone());
        for vendor in [Vendor::IbmMpi, Vendor::Mpich] {
            let mpi = run_seg_mpi(topo, vendor, op, len, root, init.clone());
            match op {
                SegOp::Gather => {
                    for r in 0..n {
                        prop_assert_eq!(
                            &srm[root][seg(r, len)],
                            &mpi[root][seg(r, len)],
                            "{:?} gather root {} segment {}", vendor, root, r
                        );
                    }
                }
                SegOp::Scatter => {
                    for r in 0..n {
                        prop_assert_eq!(
                            &srm[r][seg(r, len)],
                            &mpi[r][seg(r, len)],
                            "{:?} scatter rank {}", vendor, r
                        );
                    }
                }
                SegOp::Allgather => {
                    prop_assert_eq!(&srm, &mpi, "{:?} allgather", vendor);
                }
            }
        }
    }

    /// A scatter undoes a gather: after `gather(root)` then
    /// `scatter(root)`, every rank's own segment is back to its
    /// original contents.
    #[test]
    fn scatter_after_gather_is_identity(
        topo in arb_topology(),
        root_seed in 0usize..64,
        len in 1usize..2000,
        seed in any::<u64>(),
    ) {
        let n = topo.nprocs();
        let root = root_seed % n;
        let init = seg_init(n, len, seed);
        let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
        let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
        let out = Arc::new(Mutex::new(vec![Vec::new(); n]));
        let init_arc = Arc::new(init.clone());
        for rank in 0..n {
            let comm = world.comm(rank);
            let out = out.clone();
            let init_arc = init_arc.clone();
            sim.spawn(format!("rank{rank}"), move |ctx| {
                let buf = comm.alloc_buffer((n * len).max(1));
                buf.with_mut(|d| d[..n * len].copy_from_slice(&init_arc[rank]));
                comm.gather(&ctx, &buf, len, root);
                comm.scatter(&ctx, &buf, len, root);
                out.lock().unwrap()[rank] = buf.with(|d| d[..n * len].to_vec());
                comm.shutdown(&ctx);
            });
        }
        sim.run().expect("simulation completes");
        let results = Arc::try_unwrap(out).unwrap().into_inner().unwrap();
        for r in 0..n {
            prop_assert_eq!(
                &results[r][seg(r, len)],
                &init[r][seg(r, len)],
                "scatter∘gather changed rank {}'s segment (root {})", r, root
            );
        }
    }
}

/// The pairwise-exchange family under arbitrary tuning.
#[derive(Clone, Copy, Debug)]
enum PairOp {
    Alltoall,
    Alltoallv,
    ReduceScatter,
}

/// Run one pairwise collective on every SRM rank. `init[rank]` is the
/// full initial buffer image; returns the final buffers.
fn run_pair_srm(
    topo: Topology,
    tuning: SrmTuning,
    op: PairOp,
    len: usize,
    counts: Arc<[usize]>,
    init: Vec<Vec<u8>>,
) -> Vec<Vec<u8>> {
    let n = topo.nprocs();
    let cap = init[0].len();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, tuning);
    let out = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let init = Arc::new(init);
    for rank in 0..n {
        let comm = world.comm(rank);
        let out = out.clone();
        let init = init.clone();
        let counts = counts.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(cap.max(1));
            buf.with_mut(|d| d[..cap].copy_from_slice(&init[rank]));
            match op {
                PairOp::Alltoall => comm.alltoall(&ctx, &buf, len),
                PairOp::Alltoallv => comm.alltoallv(&ctx, &buf, len, &counts),
                PairOp::ReduceScatter => {
                    comm.reduce_scatter(&ctx, &buf, len, DType::U64, ReduceOp::Sum)
                }
            }
            out.lock().unwrap()[rank] = buf.with(|d| d[..cap].to_vec());
            comm.shutdown(&ctx);
        });
    }
    sim.run().expect("simulation completes");
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// A pairwise tuning drawn from the interesting corners: tiny chunks
/// (many pieces per segment) and a window of 1 (every put waits for a
/// credit) up to the defaults.
fn pair_tuning(chunk_pick: usize, window_pick: usize) -> SrmTuning {
    let d = SrmTuning::default();
    SrmTuning {
        pairwise_chunk: [3, 64, d.pairwise_chunk][chunk_pick].min(d.reduce_chunk),
        pairwise_window: [1, d.pairwise_window][window_pick],
        ..d
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// alltoall delivers segment `me -> j` into `j`'s receive half for
    /// every topology (including non-power-of-two rank counts), chunk
    /// size and credit window; the send half is left untouched.
    #[test]
    fn alltoall_matches_reference(
        topo in arb_topology(),
        len in 1usize..200,
        seed in any::<u64>(),
        chunk_pick in 0usize..3,
        window_pick in 0usize..2,
    ) {
        let n = topo.nprocs();
        let init = seg_init(n, 2 * len, seed); // 2*n*len bytes per rank
        let results = run_pair_srm(
            topo,
            pair_tuning(chunk_pick, window_pick),
            PairOp::Alltoall,
            len,
            Arc::from(Vec::new()),
            init.clone(),
        );
        let rbase = n * len;
        for (r, res) in results.iter().enumerate() {
            prop_assert_eq!(
                &res[..rbase], &init[r][..rbase],
                "rank {}'s send half was clobbered", r
            );
            for i in 0..n {
                prop_assert_eq!(
                    &res[rbase + i * len..rbase + (i + 1) * len],
                    &init[i][seg(r, len)],
                    "rank {} segment from {}", r, i
                );
            }
        }
    }

    /// Ragged alltoallv: only the live `counts[i*n+j]` prefixes move;
    /// slack bytes in the receive slots stay untouched.
    #[test]
    fn alltoallv_matches_reference(
        topo in arb_topology(),
        seg_cap in 1usize..120,
        seed in any::<u64>(),
        chunk_pick in 0usize..3,
        window_pick in 0usize..2,
    ) {
        let n = topo.nprocs();
        let counts: Vec<usize> = (0..n * n)
            .map(|k| {
                (seed.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(k as u64) >> 9) as usize
                    % (seg_cap + 1)
            })
            .collect();
        let init = seg_init(n, 2 * seg_cap, seed);
        let results = run_pair_srm(
            topo,
            pair_tuning(chunk_pick, window_pick),
            PairOp::Alltoallv,
            seg_cap,
            Arc::from(counts.clone()),
            init.clone(),
        );
        let rbase = n * seg_cap;
        for (r, res) in results.iter().enumerate() {
            for i in 0..n {
                let c = counts[i * n + r];
                let slot = rbase + i * seg_cap;
                prop_assert_eq!(
                    &res[slot..slot + c],
                    &init[i][r * seg_cap..r * seg_cap + c],
                    "rank {} live prefix from {}", r, i
                );
                prop_assert_eq!(
                    &res[slot + c..slot + seg_cap],
                    &init[r][slot + c..slot + seg_cap],
                    "rank {} slack bytes from {} were touched", r, i
                );
            }
        }
    }

    /// reduce_scatter leaves each rank's own block equal to the u64
    /// elementwise sum of every rank's contribution for that block.
    #[test]
    fn reduce_scatter_matches_reference(
        topo in arb_topology(),
        elems in 1usize..24,
        seed in any::<u64>(),
        chunk_pick in 0usize..3,
        window_pick in 0usize..2,
    ) {
        let n = topo.nprocs();
        let len = elems * 8;
        let contribs: Vec<Vec<u64>> = (0..n)
            .map(|r| {
                (0..n * elems)
                    .map(|i| seed.wrapping_mul(2862933555777941757).wrapping_add((r * 8191 + i) as u64) >> 13)
                    .collect()
            })
            .collect();
        let init: Vec<Vec<u8>> = contribs.iter().map(|c| collops::to_bytes_u64(c)).collect();
        let results = run_pair_srm(
            topo,
            pair_tuning(chunk_pick, window_pick),
            PairOp::ReduceScatter,
            len,
            Arc::from(Vec::new()),
            init.clone(),
        );
        let expect = reference_reduce(DType::U64, ReduceOp::Sum, &init);
        for (r, res) in results.iter().enumerate() {
            prop_assert_eq!(
                &res[seg(r, len)],
                &expect[seg(r, len)],
                "rank {}'s reduced block", r
            );
        }
    }
}

/// Repeating a call shape must hit the plan cache: only the first call
/// of each `(op, root, len)` shape compiles a schedule.
#[test]
fn repeated_shapes_hit_plan_cache() {
    let topo = Topology::new(3, 2);
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(6 * 256);
            for _ in 0..5 {
                comm.broadcast(&ctx, &buf, 1024, 1);
                comm.allreduce(&ctx, &buf, 256, DType::U64, ReduceOp::Sum);
                comm.allgather(&ctx, &buf, 64);
                comm.barrier(&ctx);
            }
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("simulation completes");
    let m = report.metrics;
    assert!(m.plan_hits > 0, "repeated shapes never hit the cache");
    assert!(m.engine_steps > 0, "engine executed no steps");
    assert!(m.engine_copy_steps > 0 && m.engine_wait_steps > 0 && m.engine_put_steps > 0);
    // 6 ranks x 4 shapes planned once each (+ the allgather-internal
    // second shape is part of the same plan): misses stay bounded while
    // hits grow with repetitions.
    assert!(
        m.plan_hits > m.plan_misses,
        "hits {} should exceed misses {} over 5 repetitions",
        m.plan_hits,
        m.plan_misses
    );
}

/// The cache is keyed by shape: disabling it via tuning re-plans every
/// call and still computes the same results.
#[test]
fn zero_cache_capacity_still_correct() {
    let topo = Topology::new(2, 3);
    let tuning = SrmTuning {
        plan_cache_cap: 0,
        ..SrmTuning::default()
    };
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, tuning);
    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(1024);
            buf.with_mut(|d| d.fill(rank as u8 + 1));
            comm.broadcast(&ctx, &buf, 512, 0);
            comm.broadcast(&ctx, &buf, 512, 0);
            buf.with(|d| assert!(d[..512].iter().all(|&b| b == 1)));
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("simulation completes");
    assert_eq!(report.metrics.plan_hits, 0, "disabled cache must not hit");
}

/// Rooted call shapes whose root cannot matter — zero-length payloads —
/// normalize to one cache key: calling the same op with every root must
/// compile once per rank and hit the cache for every other root.
#[test]
fn rootless_shapes_normalize_in_plan_cache() {
    let topo = Topology::new(2, 2);
    let n = topo.nprocs();
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    for rank in 0..n {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(64);
            for root in 0..n {
                comm.broadcast(&ctx, &buf, 0, root);
                comm.reduce(&ctx, &buf, 0, DType::U64, ReduceOp::Sum, root);
            }
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("simulation completes");
    let m = report.metrics;
    // Two shapes per rank compile once; the remaining 2*(n-1) calls per
    // rank hit the normalized key.
    assert_eq!(
        m.plan_misses,
        2 * n as u64,
        "normalization failed to fold roots"
    );
    assert_eq!(m.plan_hits, 2 * (n - 1) as u64 * n as u64);
}

/// The rootless families fold further: `Allgather`, `Allreduce` and
/// `Alltoall` at `len == 0` are all the same no-op synchronization, so
/// `PlanKey::normalized` collapses the three onto **one** cache slot.
#[test]
fn zero_len_rootless_families_share_one_plan_slot() {
    let topo = Topology::new(2, 2);
    let n = topo.nprocs() as u64;
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(64);
            for _ in 0..2 {
                comm.allreduce(&ctx, &buf, 0, DType::U64, ReduceOp::Sum);
                comm.allgather(&ctx, &buf, 0);
                comm.alltoall(&ctx, &buf, 0);
            }
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("simulation completes");
    let m = report.metrics;
    // Exactly one compile per rank; the other five calls per rank hit
    // the shared slot.
    assert_eq!(
        m.plan_misses, n,
        "three zero-len families must share one key"
    );
    assert_eq!(m.plan_hits, 5 * n);
    // All of it accounted to the world communicator (id 0).
    assert_eq!(report.plan_by_comm, vec![(0, 5 * n, n)]);
}

// Tree-structure properties over the full parameter space (cheap, so
// more cases).
proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        .. ProptestConfig::default()
    })]

    #[test]
    fn trees_span_and_are_acyclic(size in 1usize..200, kind_pick in 0usize..3) {
        let kind = [TreeKind::Binomial, TreeKind::Binary, TreeKind::Fibonacci][kind_pick];
        let mut seen = vec![false; size];
        seen[0] = true;
        let mut count = 1;
        for v in 0..size {
            for c in srm::embed::children(kind, v, size) {
                prop_assert!(c < size);
                prop_assert!(!seen[c], "{:?}: vertex {} reached twice", kind, c);
                prop_assert_eq!(srm::embed::parent(kind, c, size), Some(v));
                seen[c] = true;
                count += 1;
            }
        }
        prop_assert_eq!(count, size, "{:?}: not spanning", kind);
    }

    #[test]
    fn embedding_covers_every_rank(nodes in 1usize..12, tpn in 1usize..12, root_seed in 0usize..144) {
        let topo = Topology::new(nodes, tpn);
        let root = root_seed % topo.nprocs();
        let e = srm::Embedding::new(topo, root, TreeKind::Binomial);
        // Every node is reachable from the root's node.
        let mut seen_nodes = vec![false; nodes];
        seen_nodes[e.root_node()] = true;
        let mut stack = vec![e.root_node()];
        while let Some(n) = stack.pop() {
            for c in e.node_children(n) {
                prop_assert!(!seen_nodes[c]);
                seen_nodes[c] = true;
                stack.push(c);
            }
        }
        prop_assert!(seen_nodes.iter().all(|&b| b));
        // Every rank has a path to its node master.
        for rank in 0..topo.nprocs() {
            let mut cur = rank;
            let mut hops = 0;
            while let Some(p) = e.smp_parent(cur) {
                cur = p;
                hops += 1;
                prop_assert!(hops <= tpn, "cycle in smp tree");
            }
            prop_assert_eq!(cur, topo.master_of(topo.node_of(rank)));
        }
    }
}
