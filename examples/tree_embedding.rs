//! Reproduces the paper's Figure 1: embedding the 128-processor
//! binomial tree into an 8-node × 16-way SMP cluster, and checks the
//! height-optimality observation of §2.1 (including the 15-of-16
//! "leave a CPU for the daemons" case).
//!
//! ```sh
//! cargo run --release --example tree_embedding
//! ```

use simnet::Topology;
use srm::{embed, Embedding, TreeKind};

fn describe(topo: Topology, kind: TreeKind) {
    let e = Embedding::new(topo, 0, kind);
    println!("\n{kind:?} tree embedded in {topo}");
    println!(
        "  intra-node height {} + inter-node height {} = {} dependent hops (flat tree on {}: {})",
        embed::height(kind, topo.tasks_per_node()),
        embed::height(kind, topo.nodes()),
        e.embedded_height(),
        topo.nprocs(),
        embed::height(kind, topo.nprocs()),
    );
    println!("  inter-node tree (node -> children):");
    for node in 0..topo.nodes() {
        let children = e.node_children(node);
        if !children.is_empty() {
            println!("    node {node:2} -> {children:?}");
        }
    }
    let masters: Vec<_> = topo.masters().collect();
    println!("  masters (the only ranks that touch the network): {masters:?}");
}

fn main() {
    println!("Figure 1: SMP-aware embedding of collective trees\n===");

    // The paper's figure: 128 procs on 8 x 16.
    describe(Topology::new(8, 16), TreeKind::Binomial);

    // The intra-node subtree of one node, rooted at its master.
    let topo = Topology::new(8, 16);
    let e = Embedding::new(topo, 0, TreeKind::Binomial);
    println!("\n  intra-node subtree on node 1 (ranks 16..32):");
    for rank in topo.ranks_on(1) {
        match e.smp_parent(rank) {
            Some(p) => println!("    rank {rank:3} <- parent {p}"),
            None => println!("    rank {rank:3} (master, feeds the inter-node tree)"),
        }
    }

    // Height optimality for the daemon configuration.
    describe(Topology::new(8, 15), TreeKind::Binomial);

    // The alternatives the paper measured and rejected for inter-node use.
    for kind in [TreeKind::Binary, TreeKind::Fibonacci] {
        let h = embed::height(kind, 16);
        println!(
            "\n{kind:?} tree over 16 nodes: height {h} (binomial: {})",
            embed::height(TreeKind::Binomial, 16)
        );
    }
}
