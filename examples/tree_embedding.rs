//! Reproduces the paper's Figure 1: embedding the 128-processor
//! binomial tree into an 8-node × 16-way SMP cluster, and checks the
//! height-optimality observation of §2.1 (including the 15-of-16
//! "leave a CPU for the daemons" case).
//!
//! Pass a comma-separated rank list (and optionally a root) to also
//! print the **group embedding** of that subset on a 2x4 machine and
//! run a real broadcast over it through a subcommunicator:
//!
//! ```sh
//! cargo run --release --example tree_embedding            # default group 1,3,4,6
//! cargo run --release --example tree_embedding -- 0,2,5 5 # group + root
//! ```

use collops::Collectives;
use simnet::{MachineConfig, Sim, Topology};
use srm::{embed, Embedding, GroupEmbedding, SrmComm, SrmTuning, SrmWorld, TreeKind};
use std::sync::{Arc, Mutex};

fn describe(topo: Topology, kind: TreeKind) {
    let e = Embedding::new(topo, 0, kind);
    println!("\n{kind:?} tree embedded in {topo}");
    println!(
        "  intra-node height {} + inter-node height {} = {} dependent hops (flat tree on {}: {})",
        embed::height(kind, topo.tasks_per_node()),
        embed::height(kind, topo.nodes()),
        e.embedded_height(),
        topo.nprocs(),
        embed::height(kind, topo.nprocs()),
    );
    println!("  inter-node tree (node -> children):");
    for node in 0..topo.nodes() {
        let children = e.node_children(node);
        if !children.is_empty() {
            println!("    node {node:2} -> {children:?}");
        }
    }
    let masters: Vec<_> = topo.masters().collect();
    println!("  masters (the only ranks that touch the network): {masters:?}");
}

fn main() {
    println!("Figure 1: SMP-aware embedding of collective trees\n===");

    // The paper's figure: 128 procs on 8 x 16.
    describe(Topology::new(8, 16), TreeKind::Binomial);

    // The intra-node subtree of one node, rooted at its master.
    let topo = Topology::new(8, 16);
    let e = Embedding::new(topo, 0, TreeKind::Binomial);
    println!("\n  intra-node subtree on node 1 (ranks 16..32):");
    for rank in topo.ranks_on(1) {
        match e.smp_parent(rank) {
            Some(p) => println!("    rank {rank:3} <- parent {p}"),
            None => println!("    rank {rank:3} (master, feeds the inter-node tree)"),
        }
    }

    // Height optimality for the daemon configuration.
    describe(Topology::new(8, 15), TreeKind::Binomial);

    // The alternatives the paper measured and rejected for inter-node use.
    for kind in [TreeKind::Binary, TreeKind::Fibonacci] {
        let h = embed::height(kind, 16);
        println!(
            "\n{kind:?} tree over 16 nodes: height {h} (binomial: {})",
            embed::height(TreeKind::Binomial, 16)
        );
    }

    // §3.1's arbitrary-group generalization: embed a user-supplied
    // subset of ranks and broadcast over it through a subcommunicator.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let group: Vec<usize> = args
        .first()
        .map(|s| {
            s.split(',')
                .map(|r| r.parse().expect("rank list: comma-separated integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 3, 4, 6]);
    let root: usize = args
        .get(1)
        .map(|s| s.parse().expect("root: an integer rank"))
        .unwrap_or(group[0]);
    describe_group(Topology::new(2, 4), &group, root);
}

/// Print `group`'s embedding on `topo` and run a broadcast over it.
fn describe_group(topo: Topology, group: &[usize], root: usize) {
    let e = GroupEmbedding::new(topo, group, root, TreeKind::Binomial);
    println!("\nGroup {group:?} (root {root}) embedded in {topo}");
    println!(
        "  {} members on {} node(s), embedded height {}",
        e.len(),
        e.node_count(),
        e.embedded_height()
    );
    println!(
        "  group masters: {:?}",
        (0..e.node_count())
            .map(|i| e.group_master(i))
            .collect::<Vec<_>>()
    );
    println!("  inter-node edges (network): {:?}", e.inter_edges());
    println!("  intra-node edges (shared memory): {:?}", e.smp_edges());
    println!(
        "  SMP-aware inter-node messages: {} (communicator-order tree: {})",
        e.inter_edges().len(),
        e.naive_inter_edges()
    );

    // Run the broadcast for real: the root fills a buffer; every
    // member must read the same bytes back through its subcommunicator.
    let len = 1024usize;
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());
    let mut sub_of: Vec<Option<SrmComm>> = (0..topo.nprocs()).map(|_| None).collect();
    for (sub, &r) in world.comm_create(group).into_iter().zip(group) {
        sub_of[r] = Some(sub);
    }
    let ok = Arc::new(Mutex::new(0usize));
    for (rank, sub) in sub_of.into_iter().enumerate() {
        let comm = world.comm(rank);
        let ok = ok.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            if let Some(sub) = sub {
                let buf = sub.alloc_buffer(len);
                if sub.rank() == root {
                    buf.with_mut(|d| d.fill(0x5a));
                }
                let croot = sub.group().ranks().iter().position(|&r| r == root).unwrap();
                sub.broadcast(&ctx, &buf, len, croot);
                if buf.with(|d| d.iter().all(|&b| b == 0x5a)) {
                    *ok.lock().unwrap() += 1;
                }
            }
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("group broadcast completes");
    println!(
        "  broadcast of {len} B from rank {root}: {}/{} members verified, \
         {} network messages",
        ok.lock().unwrap(),
        group.len(),
        report.metrics.net_messages
    );
}
