//! Quickstart: simulate a 4-node × 16-way SP cluster and run SRM
//! collectives on it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use collops::{Collectives, DType, ReduceOp};
use simnet::{MachineConfig, Sim, Topology};
use srm::{SrmTuning, SrmWorld};

fn main() {
    // 4 SMP nodes x 16 tasks, with the cost model of the paper's IBM SP.
    let topo = Topology::sp_16way(4);
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());

    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            // --- broadcast: rank 0 distributes a 1 MB payload ---
            let len = 1 << 20;
            let buf = comm.alloc_buffer(len);
            if rank == 0 {
                buf.with_mut(|d| d.iter_mut().enumerate().for_each(|(i, b)| *b = i as u8));
            }
            let t0 = ctx.now();
            comm.broadcast(&ctx, &buf, len, 0);
            if rank == 0 {
                println!(
                    "broadcast  1 MB to {:3} ranks: {}",
                    topo.nprocs(),
                    ctx.now() - t0
                );
            }
            buf.with(|d| assert_eq!(d[12345], 12345usize as u8));

            // --- allreduce: everyone sums a vector of doubles ---
            let elems = 1024;
            let v: Vec<f64> = (0..elems).map(|i| (rank + i) as f64).collect();
            let abuf = comm.alloc_buffer(elems * 8);
            abuf.with_mut(|d| d.copy_from_slice(&collops::to_bytes_f64(&v)));
            comm.barrier(&ctx); // sync so the timing below is the op alone
            let t0 = ctx.now();
            comm.allreduce(&ctx, &abuf, elems * 8, DType::F64, ReduceOp::Sum);
            if rank == 0 {
                println!("allreduce  8 KB of doubles:   {}", ctx.now() - t0);
                let sums = collops::from_bytes_f64(&abuf.with(|d| d.to_vec()));
                let expect: f64 = (0..topo.nprocs()).map(|r| r as f64).sum();
                assert_eq!(sums[0], expect);
                println!("sum over ranks of rank+0 = {} (expected {expect})", sums[0]);
            }

            // --- allgather: every rank's 1 KB segment, everywhere ---
            let seg = 1024;
            let gbuf = comm.alloc_buffer(topo.nprocs() * seg);
            gbuf.with_mut(|d| d[rank * seg..(rank + 1) * seg].fill(rank as u8));
            comm.barrier(&ctx);
            let t0 = ctx.now();
            comm.allgather(&ctx, &gbuf, seg);
            if rank == 0 {
                println!("allgather  1 KB per rank:     {}", ctx.now() - t0);
                gbuf.with(|d| {
                    assert!(d[..topo.nprocs() * seg]
                        .chunks(seg)
                        .enumerate()
                        .all(|(r, c)| c.iter().all(|&b| b == r as u8)))
                });
            }

            // --- barrier ---
            comm.barrier(&ctx);
            let t0 = ctx.now();
            comm.barrier(&ctx);
            if rank == 0 {
                println!(
                    "barrier    {:3} ranks:         {}",
                    topo.nprocs(),
                    ctx.now() - t0
                );
            }

            comm.shutdown(&ctx);
        });
    }

    let report = sim.run().expect("simulation completes");
    println!(
        "\nsimulated {} ranks to t={} | {} network messages, {} shared-memory copies, {} interrupts",
        topo.nprocs(),
        report.end_time,
        report.metrics.net_messages,
        report.metrics.shm_copies,
        report.metrics.interrupts,
    );
}
