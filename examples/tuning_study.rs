//! Tuning study: how SRM's switch points interact with the machine.
//!
//! The paper's future work asks for "an analytical performance model
//! ... helpful in tuning the pipeline parameters in SRM" under
//! different assumptions about SMP node size, memory bandwidth and
//! network performance. The simulator *is* such a model: this example
//! sweeps the pipeline chunk size and the node size on two machine
//! presets and prints where the optima move.
//!
//! ```sh
//! cargo run --release --example tuning_study
//! ```

use simnet::{MachineConfig, Topology};
use srm::SrmTuning;
use srm_cluster::{measure, HarnessOpts, Impl, Op};

fn main() {
    let machines = [
        ("IBM SP (Colony)", MachineConfig::ibm_sp_colony()),
        (
            "commodity VIA cluster",
            MachineConfig::commodity_via_cluster(),
        ),
    ];

    println!("Pipeline chunk size for a 24 KB broadcast on 4x16 (paper default: 4 KB)\n");
    print!("{:>24}", "machine");
    let chunks = [1usize << 10, 2 << 10, 4 << 10, 8 << 10, 24 << 10];
    for c in chunks {
        print!(" {:>9}", format!("{}K", c >> 10));
    }
    println!();
    for (name, machine) in &machines {
        print!("{name:>24}");
        for chunk in chunks {
            let tuning = SrmTuning {
                pipeline_chunk: chunk,
                pipeline_max: 32 << 10,
                ..SrmTuning::default()
            };
            let m = measure(
                Impl::Srm,
                machine.clone(),
                Topology::sp_16way(4),
                Op::Bcast,
                24 << 10,
                HarnessOpts {
                    iters: 5,
                    srm: tuning,
                },
            );
            print!(" {:>8.1}u", m.per_call.as_us());
        }
        println!();
    }

    println!("\nNode size at fixed P=64: where does SMP-awareness pay most? (4 KB broadcast)\n");
    println!(
        "{:>24} {:>12} {:>12} {:>12}",
        "machine", "4 x 16", "8 x 8", "16 x 4"
    );
    for (name, machine) in &machines {
        print!("{name:>24}");
        for (nodes, tpn) in [(4usize, 16usize), (8, 8), (16, 4)] {
            let m = measure(
                Impl::Srm,
                machine.clone(),
                Topology::new(nodes, tpn),
                Op::Bcast,
                4096,
                HarnessOpts {
                    iters: 5,
                    ..Default::default()
                },
            );
            print!(" {:>11.1}u", m.per_call.as_us());
        }
        println!();
    }
    println!("\nFatter nodes shift work onto shared memory — the trend the paper's introduction banks on.");
}
