//! Renders a virtual-time swimlane of one small SRM broadcast on a
//! 2-node x 4-way cluster, using the simulator's event tracing — a
//! way to *see* the protocol of Figure 4: staging, landing arrivals,
//! local reads, credit acknowledgements.
//!
//! With `trace_steps` enabled in the tuning, the plan/execute engine
//! additionally traces every `Step` it executes (labels `step:*`), so
//! the run also prints the **executed schedule** of each rank as a
//! swimlane: one line per rank, one `[index] label @time` entry per
//! executed step, in execution order. Because the broadcast is
//! compiled per *role* (root, on-node peer, remote landing reader),
//! ranks on the same role show the same step sequence at different
//! times — the step list is the Schedule, the times are the execution.
//!
//! Output format:
//!
//! ```text
//! rank0 | [ 0] shm-copy @ 12.3 | [ 1] pair-publish @ 13.0 | ...
//! rank1 | [ 0] pair-wait-published @ 0.0 | ...
//! ```
//!
//! (`step:` prefixes are stripped; times are virtual microseconds.)
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use collops::Collectives;
use simnet::{MachineConfig, Sim, Topology, Trace};
use srm::{SrmTuning, SrmWorld};

fn main() {
    let topo = Topology::new(2, 4);
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let trace = Trace::new();
    sim.attach_trace(trace.clone());
    let tuning = SrmTuning {
        trace_steps: true,
        ..SrmTuning::default()
    };
    let world = SrmWorld::new(&mut sim, topo, tuning);

    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(2048);
            if rank == 0 {
                buf.with_mut(|d| d.fill(9));
            }
            comm.broadcast(&ctx, &buf, 2048, 0);
            comm.shutdown(&ctx);
        });
    }
    sim.run().expect("run completes");

    // LP ids: dispatchers first (spawned by the RMA world), then ranks.
    let mut names: Vec<String> = (0..topo.nprocs()).map(|i| format!("disp{i}")).collect();
    names.extend((0..topo.nprocs()).map(|i| format!("rank{i}")));
    println!("One 2 KB SRM broadcast on {topo}:\n");
    print!("{}", trace.render(&names));
    println!("\n{} events traced", trace.len());

    // Executed-schedule swimlanes: the `step:*` events each rank's
    // engine traced, in order. Rank r runs on LP nprocs + r.
    println!("\nExecuted schedules (step index -> [label @us]):\n");
    for rank in 0..topo.nprocs() {
        let steps: Vec<String> = trace
            .for_lp(topo.nprocs() + rank)
            .into_iter()
            .filter_map(|e| {
                e.label
                    .strip_prefix("step:")
                    .map(|l| (l.to_string(), e.at.as_us()))
            })
            .enumerate()
            .map(|(i, (label, at))| format!("[{i:>2}] {label} @{at:.1}"))
            .collect();
        println!("rank{rank} | {}", steps.join(" | "));
    }
}
