//! Renders a virtual-time swimlane of one small SRM broadcast on a
//! 2-node x 4-way cluster, using the simulator's event tracing — a
//! way to *see* the protocol of Figure 4: staging, landing arrivals,
//! local reads, credit acknowledgements.
//!
//! With `trace_steps` enabled in the tuning, the plan/execute engine
//! additionally traces every `Step` it executes (labels `step:*`), so
//! the run also prints the **executed schedule** of each rank as a
//! swimlane: one line per rank, one `[index] label @time` entry per
//! executed step, in execution order. Because the broadcast is
//! compiled per *role* (root, on-node peer, remote landing reader),
//! ranks on the same role show the same step sequence at different
//! times — the step list is the Schedule, the times are the execution.
//!
//! After the world broadcast, the non-contiguous subgroup `[1, 3, 6]`
//! runs an allreduce through its own communicator, so the swimlane
//! headers also show the per-communicator plan-cache traffic the run
//! generated (`comm 0` is the world; subgroups get fresh ids).
//!
//! Output format:
//!
//! ```text
//! comm 0: 7 plan hits, 1 plan misses
//! comm 1: 2 plan hits, 1 plan misses
//! rank0 | [ 0] shm-copy @ 12.3 | [ 1] pair-publish @ 13.0 | ...
//! rank1 | [ 0] pair-wait-published @ 0.0 | ...
//! ```
//!
//! (`step:` prefixes are stripped; times are virtual microseconds.)
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use collops::{Collectives, DType, ReduceOp};
use simnet::{MachineConfig, Sim, Topology, Trace};
use srm::{SrmComm, SrmTuning, SrmWorld};

fn main() {
    let topo = Topology::new(2, 4);
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let trace = Trace::new();
    sim.attach_trace(trace.clone());
    let tuning = SrmTuning {
        trace_steps: true,
        ..SrmTuning::default()
    };
    let world = SrmWorld::new(&mut sim, topo, tuning);

    let group = [1usize, 3, 6];
    let mut sub_of: Vec<Option<SrmComm>> = (0..topo.nprocs()).map(|_| None).collect();
    for (sub, &r) in world.comm_create(&group).into_iter().zip(&group) {
        sub_of[r] = Some(sub);
    }

    for (rank, sub) in sub_of.into_iter().enumerate() {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(2048);
            if rank == 0 {
                buf.with_mut(|d| d.fill(9));
            }
            comm.broadcast(&ctx, &buf, 2048, 0);
            if let Some(sub) = sub {
                let sbuf = sub.alloc_buffer(2048);
                sub.allreduce(&ctx, &sbuf, 2048, DType::U64, ReduceOp::Sum);
            }
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("run completes");

    // LP ids: dispatchers first (spawned by the RMA world), then ranks.
    let mut names: Vec<String> = (0..topo.nprocs()).map(|i| format!("disp{i}")).collect();
    names.extend((0..topo.nprocs()).map(|i| format!("rank{i}")));
    println!(
        "One 2 KB SRM broadcast on {topo}, then an allreduce on subgroup {group:?} \
         ({} comm creates):\n",
        report.metrics.comm_creates
    );
    for &(comm_id, hits, misses) in &report.plan_by_comm {
        let kind = if comm_id == 0 { " (world)" } else { "" };
        println!("comm {comm_id}{kind}: {hits} plan hits, {misses} plan misses");
    }
    println!();
    print!("{}", trace.render(&names));
    println!("\n{} events traced", trace.len());

    // Executed-schedule swimlanes: the `step:*` events each rank's
    // engine traced, in order. Rank r runs on LP nprocs + r.
    println!("\nExecuted schedules (step index -> [label @us]):\n");
    for rank in 0..topo.nprocs() {
        let steps: Vec<String> = trace
            .for_lp(topo.nprocs() + rank)
            .into_iter()
            .filter_map(|e| {
                e.label
                    .strip_prefix("step:")
                    .map(|l| (l.to_string(), e.at.as_us()))
            })
            .enumerate()
            .map(|(i, (label, at))| format!("[{i:>2}] {label} @{at:.1}"))
            .collect();
        println!("rank{rank} | {}", steps.join(" | "));
    }
}
