//! Renders a virtual-time swimlane of one small SRM broadcast on a
//! 2-node x 4-way cluster, using the simulator's event tracing — a
//! way to *see* the protocol of Figure 4: staging, landing arrivals,
//! local reads, credit acknowledgements.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use collops::Collectives;
use simnet::{MachineConfig, Sim, Topology, Trace};
use srm::{SrmTuning, SrmWorld};

fn main() {
    let topo = Topology::new(2, 4);
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    let trace = Trace::new();
    sim.attach_trace(trace.clone());
    let world = SrmWorld::new(&mut sim, topo, SrmTuning::default());

    for rank in 0..topo.nprocs() {
        let comm = world.comm(rank);
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(2048);
            if rank == 0 {
                buf.with_mut(|d| d.fill(9));
            }
            comm.broadcast(&ctx, &buf, 2048, 0);
            comm.shutdown(&ctx);
        });
    }
    sim.run().expect("run completes");

    // LP ids: dispatchers first (spawned by the RMA world), then ranks.
    let mut names: Vec<String> = (0..topo.nprocs()).map(|i| format!("disp{i}")).collect();
    names.extend((0..topo.nprocs()).map(|i| format!("rank{i}")));
    println!("One 2 KB SRM broadcast on {topo}:\n");
    print!("{}", trace.render(&names));
    println!("\n{} events traced", trace.len());
}
