//! Renders a virtual-time swimlane of one small SRM broadcast on a
//! 2-node x 4-way cluster, using the simulator's event tracing — a
//! way to *see* the protocol of Figure 4: staging, landing arrivals,
//! local reads, credit acknowledgements.
//!
//! With `trace_steps` enabled in the tuning, the plan/execute engine
//! additionally traces every `Step` it executes (labels `step:*`), so
//! the run also prints the **executed schedule** of each rank as a
//! swimlane: one line per rank, one `[index] label @time` entry per
//! executed step, in execution order. Because the broadcast is
//! compiled per *role* (root, on-node peer, remote landing reader),
//! ranks on the same role show the same step sequence at different
//! times — the step list is the Schedule, the times are the execution.
//!
//! After the world broadcast, a 64 KB world **alltoall** crosses the
//! default `pairwise_direct_min` threshold and takes the direct route
//! (address exchange + one put per remote pair), and the
//! non-contiguous subgroup `[1, 3, 6]` runs an allreduce through its
//! own communicator, so the swimlane headers also show the
//! per-communicator plan-cache traffic the run generated (`comm 0` is
//! the world; subgroups get fresh ids). Every plan compile also traces
//! the planner's segment-routing decision as a `route:*` label —
//! `route:staged` for the 2 KB broadcast, `route:direct` for the
//! alltoall — rendered in their own section.
//!
//! Output format:
//!
//! ```text
//! comm 0: 7 plan hits, 1 plan misses
//! comm 1: 2 plan hits, 1 plan misses
//! rank0 | [ 0] shm-copy @ 12.3 | [ 1] pair-publish @ 13.0 | ...
//! rank1 | [ 0] pair-wait-published @ 0.0 | ...
//! ```
//!
//! (`step:` prefixes are stripped; times are virtual microseconds.)
//!
//! A second run then replays the same program under a seeded
//! [`Perturb`] config (delivery jitter, compute stalls, a straggler
//! rank, AM handler stalls, link stretches and bandwidth dips): the
//! injected events show up as `perturb:*` entries in the swimlane, and
//! the per-rank step timelines visibly skew against the unperturbed
//! run while the step *sequences* stay identical — the schedule is the
//! contract, the times are the perturbation. Mechanisms with duration
//! are rendered as **intervals**: an AM handler stall spans its paired
//! `perturb:am-stall` / `perturb:am-stall-end` events, and a bandwidth
//! dip opens a window of `bw_dip_window` on its link from the
//! `perturb:bw-dip` event.
//!
//! A final **tuned replay** loads a hand-authored [`TuneTable`] whose
//! one wildcard allreduce entry re-routes the subgroup's allreduce
//! onto the pipelined path: the run prints the per-communicator
//! tune-hit breakdown from the report and the `tuned:table` /
//! `tuned:default` labels the engine traces on every plan compile.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use collops::{Collectives, DType, ReduceOp};
use simnet::{MachineConfig, Perturb, Sim, SimTime, Topology, Trace};
use srm::{SrmComm, SrmTuning, SrmWorld, TuneEntry, TuneKey, TuneOp, TuneTable};
use std::sync::Arc;

const GROUP: [usize; 3] = [1, 3, 6];

/// Per-pair alltoall segment: at the default `pairwise_direct_min`,
/// so the planner picks the direct route without any forcing.
const A2A_SEG: usize = 64 * 1024;

/// Run the example program — a world broadcast, then an allreduce on
/// the subgroup — with step tracing on, optionally perturbed, and
/// optionally with a searched tuning table loaded.
fn run_once(
    topo: Topology,
    perturb: Option<Perturb>,
    table: Option<Arc<TuneTable>>,
) -> (Trace, simnet::Report) {
    let mut sim = Sim::new(MachineConfig::ibm_sp_colony());
    if let Some(p) = perturb {
        sim.set_perturb(p);
    }
    let trace = Trace::new();
    sim.attach_trace(trace.clone());
    let tuning = SrmTuning {
        trace_steps: true,
        ..SrmTuning::default()
    };
    let world = match table {
        Some(t) => SrmWorld::with_tuning_table(&mut sim, topo, tuning, t),
        None => SrmWorld::new(&mut sim, topo, tuning),
    };

    let mut sub_of: Vec<Option<SrmComm>> = (0..topo.nprocs()).map(|_| None).collect();
    for (sub, &r) in world.comm_create(&GROUP).into_iter().zip(&GROUP) {
        sub_of[r] = Some(sub);
    }

    for (rank, sub) in sub_of.into_iter().enumerate() {
        let comm = world.comm(rank);
        let nprocs = topo.nprocs();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let buf = comm.alloc_buffer(2 * nprocs * A2A_SEG);
            if rank == 0 {
                buf.with_mut(|d| d.fill(9));
            }
            comm.broadcast(&ctx, &buf, 2048, 0);
            comm.alltoall(&ctx, &buf, A2A_SEG);
            if let Some(sub) = sub {
                let sbuf = sub.alloc_buffer(2048);
                sub.allreduce(&ctx, &sbuf, 2048, DType::U64, ReduceOp::Sum);
            }
            comm.shutdown(&ctx);
        });
    }
    let report = sim.run().expect("run completes");
    (trace, report)
}

fn main() {
    let topo = Topology::new(2, 4);
    let group = GROUP;
    let (trace, report) = run_once(topo, None, None);

    // LP ids: dispatchers first (spawned by the RMA world), then ranks.
    let mut names: Vec<String> = (0..topo.nprocs()).map(|i| format!("disp{i}")).collect();
    names.extend((0..topo.nprocs()).map(|i| format!("rank{i}")));
    println!(
        "One 2 KB SRM broadcast on {topo}, a 64 KB alltoall, then an allreduce \
         on subgroup {group:?} ({} comm creates):\n",
        report.metrics.comm_creates
    );
    for &(comm_id, hits, misses) in &report.plan_by_comm {
        let kind = if comm_id == 0 { " (world)" } else { "" };
        println!("comm {comm_id}{kind}: {hits} plan hits, {misses} plan misses");
    }

    // The planner's segment-routing decisions, one `route:*` label per
    // plan compile: the 2 KB broadcast stages through the landing
    // buffers, the 64 KB alltoall goes direct into the peers' user
    // buffers.
    let who_of = |lp: usize| names.get(lp).cloned().unwrap_or_else(|| format!("lp{lp}"));
    println!(
        "\nSegment routes chosen at plan compile ({} direct puts issued):",
        report.metrics.pairwise_direct_puts
    );
    for e in trace.with_prefix("route:") {
        println!(
            "  {:>10} {:<6} {}",
            format!("{}", e.at),
            who_of(e.lp),
            e.label
        );
    }
    println!();
    print!("{}", trace.render(&names));
    println!("\n{} events traced", trace.len());

    // Executed-schedule swimlanes: the `step:*` events each rank's
    // engine traced, in order. Rank r runs on LP nprocs + r.
    let sched = |trace: &Trace, rank: usize| -> Vec<(String, f64)> {
        trace
            .for_lp(topo.nprocs() + rank)
            .into_iter()
            .filter_map(|e| {
                e.label
                    .strip_prefix("step:")
                    .map(|l| (l.to_string(), e.at.as_us()))
            })
            .collect()
    };
    println!("\nExecuted schedules (step index -> [label @us]):\n");
    for rank in 0..topo.nprocs() {
        let steps: Vec<String> = sched(&trace, rank)
            .into_iter()
            .enumerate()
            .map(|(i, (label, at))| format!("[{i:>2}] {label} @{at:.1}"))
            .collect();
        println!("rank{rank} | {}", steps.join(" | "));
    }

    // The same program under a seeded perturbation: jitter + stalls +
    // a straggler on rank 2, with the dispatcher- and link-level
    // mechanisms turned up so their intervals show on this small
    // program. The step sequences must not change — only their times
    // do; the `perturb:*` trace entries show exactly where the skew
    // entered.
    let cfg = Perturb {
        am_stall_permille: 600,
        bw_dip_permille: 500,
        ..Perturb::standard(0xC0FFEE)
    }
    .with_straggler(2, SimTime::from_us(40));
    let (ptrace, preport) = run_once(topo, Some(cfg), None);
    println!("\nPerturbed replay ({cfg}):");
    println!(
        "{} perturbation events, {:.1}us total injected, max skew {:.1}us\n",
        preport.metrics.perturb_events,
        preport.metrics.perturb_delay_ps as f64 / 1e6,
        preport.metrics.perturb_max_skew_ps as f64 / 1e6,
    );
    for e in ptrace.with_prefix("perturb:") {
        let who = names
            .get(e.lp)
            .cloned()
            .unwrap_or_else(|| format!("lp{}", e.lp));
        println!("  {:>10} {who:<6} {}", format!("{}", e.at), e.label);
    }

    // Interval rendering for the mechanisms with duration. AM handler
    // stalls are bracketed by paired events on the stalled LP; a
    // bandwidth dip slows its link for the configured window from the
    // moment it starts.
    println!("\nInjected intervals (lane: start -> end):\n");
    let mut open: Vec<Option<SimTime>> = vec![None; names.len() + 1];
    for e in ptrace.with_prefix("perturb:am-stall") {
        let lane = e.lp.min(names.len());
        if e.label == "perturb:am-stall" {
            open[lane] = Some(e.at);
        } else if e.label == "perturb:am-stall-end" {
            if let Some(start) = open[lane].take() {
                println!(
                    "  am-stall {:<6} {start} -> {} ({:.1}us)",
                    who_of(e.lp),
                    e.at,
                    (e.at - start).as_us()
                );
            }
        }
    }
    for e in ptrace.with_prefix("perturb:bw-dip") {
        println!(
            "  bw-dip   {:<6} {} -> {} (link slowed x{})",
            who_of(e.lp),
            e.at,
            e.at + cfg.bw_dip_window,
            cfg.bw_dip_mult
        );
    }

    println!("\nSkewed schedules (same steps, perturbed times):\n");
    for rank in 0..topo.nprocs() {
        let base = sched(&trace, rank);
        let pert = sched(&ptrace, rank);
        assert_eq!(
            base.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            pert.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            "rank{rank}: perturbation changed the schedule, not just the times"
        );
        let steps: Vec<String> = pert
            .iter()
            .zip(&base)
            .enumerate()
            .map(|(i, ((label, at), (_, base_at)))| {
                format!("[{i:>2}] {label} @{at:.1} ({:+.1})", at - base_at)
            })
            .collect();
        println!("rank{rank} | {}", steps.join(" | "));
    }
    println!(
        "\nmakespan: {} unperturbed -> {} perturbed",
        report.end_time, preport.end_time
    );

    // Tuned replay: the same program with a small searched tuning
    // table loaded. The single wildcard allreduce entry sets
    // `allreduce_rd_max = 0`, which flips the subgroup's 2 KB
    // allreduce from recursive doubling onto the pipelined path —
    // same results, different schedule. Every plan-cache miss now
    // consults the table: the engine traces `tuned:table` /
    // `tuned:default` and the report carries the per-communicator
    // tune-hit breakdown next to the plan-cache one.
    let mut table = TuneTable::new(7, "hand-authored timeline demo", vec![4096]);
    table.insert(
        TuneKey {
            op: TuneOp::Allreduce,
            class: 0,
            nodes: 0,
            ranks: 0,
        },
        TuneEntry {
            allreduce_rd_max: 0,
            ..TuneEntry::from_tuning(&SrmTuning::default())
        },
    );
    let (ttrace, treport) = run_once(topo, None, Some(Arc::new(table)));
    println!("\nTuned replay (one wildcard allreduce entry, class edge 4 KB):\n");
    for &(comm_id, hits, misses) in &treport.tune_by_comm {
        let kind = if comm_id == 0 { " (world)" } else { "" };
        println!(
            "comm {comm_id}{kind}: {hits} tuned plan compiles, {misses} default plan compiles"
        );
    }
    println!();
    for e in ttrace.with_prefix("tuned:") {
        println!(
            "  {:>10} {:<6} {}",
            format!("{}", e.at),
            who_of(e.lp),
            e.label
        );
    }
    let labels =
        |t: &Trace, r: usize| -> Vec<String> { sched(t, r).into_iter().map(|(l, _)| l).collect() };
    // Rank 0 only runs world ops (no table entries for them): schedule
    // unchanged. Rank 1 is in the subgroup: its allreduce re-planned.
    assert_eq!(labels(&trace, 0), labels(&ttrace, 0));
    assert_ne!(labels(&trace, 1), labels(&ttrace, 1));
    println!(
        "\nrank0 (world ops only): schedule unchanged; \
         rank1 (subgroup allreduce): {} steps default -> {} steps tuned",
        labels(&trace, 1).len(),
        labels(&ttrace, 1).len()
    );
}
