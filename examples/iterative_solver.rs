//! The workload the paper's introduction motivates: an iterative
//! solver that uses collectives for "updating distributed vectors
//! [and] calculating stopping criteria in iterative algorithms".
//!
//! A distributed Jacobi-style iteration on a 1-D Laplace problem:
//! every sweep each rank relaxes its block, then the cluster computes
//! the global residual with an **allreduce** — the operation that sits
//! on the critical path of every sweep. The same program runs over SRM
//! and over both MPI baselines, and the total simulated runtime shows
//! what the collective's speed is worth to an application.
//!
//! A fourth row runs SRM with the *nonblocking* allreduce, software
//! pipelined one sweep deep: sweep `k`'s residual reduction is issued
//! with `iallreduce` and completes while sweep `k+1` relaxes (the
//! compute is sliced with `test` polls so the parked schedule makes
//! progress). The stopping criterion is then read one sweep late —
//! the standard latency-hiding trade — but with a fixed sweep count
//! the numerics are bit-identical to the blocking rows.
//!
//! ```sh
//! cargo run --release --example iterative_solver
//! ```

use collops::{CollRequest, Collectives, DType, NonblockingCollectives, ReduceOp};
use simnet::{MachineConfig, Sim, SimTime, Topology};
use srm_cluster::Impl;
use std::sync::{Arc, Mutex};

const LOCAL_N: usize = 4096; // unknowns per rank
const SWEEPS: usize = 20;

/// Per-sweep local relaxation compute time (modelled: the solver is
/// memory-bound at roughly the reduce streaming rate).
fn sweep_compute(cfg: &MachineConfig) -> SimTime {
    cfg.reduce_per_byte.cost_of(LOCAL_N * 8 * 2)
}

fn run(imp: Impl, overlap: bool) -> (SimTime, f64) {
    let topo = Topology::sp_16way(4);
    let machine = MachineConfig::ibm_sp_colony();
    let mut sim = Sim::new(machine);

    enum World {
        Srm(srm::SrmWorld),
        Mpi(msg::MsgWorld),
    }
    let world = match imp {
        Impl::Srm => World::Srm(srm::SrmWorld::new(
            &mut sim,
            topo,
            srm::SrmTuning::default(),
        )),
        Impl::IbmMpi => World::Mpi(msg::MsgWorld::new(&mut sim, topo, msg::Vendor::IbmMpi)),
        Impl::Mpich => World::Mpi(msg::MsgWorld::new(&mut sim, topo, msg::Vendor::Mpich)),
    };

    let out = Arc::new(Mutex::new((SimTime::ZERO, 0.0f64)));
    for rank in 0..topo.nprocs() {
        let (coll, srm_comm): (Box<dyn Collectives + Send>, Option<srm::SrmComm>) = match &world {
            World::Srm(w) => (Box::new(w.comm(rank)), Some(w.comm(rank))),
            World::Mpi(w) => (Box::new(mpi_coll::MpiColl::new(w.endpoint(rank))), None),
        };
        let out = out.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            // Local block with fixed boundary conditions at the ends.
            let mut u = vec![0.0f64; LOCAL_N];
            if rank == 0 {
                u[0] = 1.0;
            }
            let resbuf = shmem::ShmBuffer::new(8);
            let mut residual = f64::INFINITY;
            // In pipelined mode the allreduce for the previous sweep is
            // in flight while this sweep relaxes; `resbuf` is touched
            // only after waiting on it.
            let mut pending: Option<CollRequest> = None;
            for _sweep in 0..SWEEPS {
                // Halo exchange is elided (a point-to-point concern);
                // the sweep's compute is modelled, the residual is real.
                let mut local_res = 0.0f64;
                for i in 1..LOCAL_N - 1 {
                    let new = 0.5 * (u[i - 1] + u[i + 1]);
                    local_res += (new - u[i]).abs();
                    u[i] = new;
                }
                let compute = sweep_compute(ctx.config());
                if overlap {
                    let nb = srm_comm.as_ref().expect("overlap mode is SRM-only");
                    // Slice the compute with `test` polls so the parked
                    // schedule progresses under this rank's feet.
                    let slice = SimTime::from_us_f64(compute.as_us() / 4.0);
                    for _ in 0..4 {
                        ctx.advance(slice);
                        if let Some(req) = &pending {
                            nb.test(&ctx, req);
                        }
                    }
                    if let Some(req) = pending.take() {
                        nb.wait(&ctx, req);
                        residual = f64::from_le_bytes(
                            resbuf.with(|d| d[..8].try_into().expect("8 bytes")),
                        );
                    }
                    resbuf.with_mut(|d| d.copy_from_slice(&local_res.to_le_bytes()));
                    pending = Some(nb.iallreduce(&ctx, &resbuf, 8, DType::F64, ReduceOp::Sum));
                } else {
                    ctx.advance(compute);

                    // Global stopping criterion: sum of residuals.
                    resbuf.with_mut(|d| d.copy_from_slice(&local_res.to_le_bytes()));
                    coll.allreduce(&ctx, &resbuf, 8, DType::F64, ReduceOp::Sum);
                    residual =
                        f64::from_le_bytes(resbuf.with(|d| d[..8].try_into().expect("8 bytes")));
                }
            }
            if let Some(req) = pending.take() {
                let nb = srm_comm.as_ref().expect("overlap mode is SRM-only");
                nb.wait(&ctx, req);
                residual = f64::from_le_bytes(resbuf.with(|d| d[..8].try_into().expect("8 bytes")));
            }
            coll.barrier(&ctx);
            if rank == 0 {
                *out.lock().unwrap() = (ctx.now(), residual);
            }
            if let Some(c) = srm_comm {
                c.shutdown(&ctx);
            }
        });
    }
    sim.run().expect("solver completes");
    let r = *out.lock().unwrap();
    r
}

fn main() {
    println!(
        "Jacobi sweep study: {} unknowns/rank, {} sweeps, allreduce stopping criterion, 64 ranks\n",
        LOCAL_N, SWEEPS
    );
    let rows = [
        (Impl::Srm, false, "SRM"),
        (Impl::Srm, true, "SRM(nb)"),
        (Impl::IbmMpi, false, Impl::IbmMpi.name()),
        (Impl::Mpich, false, Impl::Mpich.name()),
    ];
    let mut base = None;
    for (imp, overlap, name) in rows {
        let (t, res) = run(imp, overlap);
        let ratio = base.map(|b: SimTime| t.as_us() / b.as_us());
        base = base.or(Some(t));
        println!(
            "{:8}: total {:>12}   final residual {:.3e}{}",
            name,
            format!("{t}"),
            res,
            match ratio {
                Some(s) if s > 1.0 => format!("   ({:.2}x slower than blocking SRM)", s),
                Some(s) if s < 1.0 => format!("   ({:.2}x faster than blocking SRM)", 1.0 / s),
                _ => String::new(),
            }
        );
    }
    println!(
        "\nIdentical numerics on every implementation; only the collective transport \
         (and, for SRM(nb), the sweep-deep pipelining of the stopping criterion) differs."
    );
}
